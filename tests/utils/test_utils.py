"""Tests for formatting, validation, config and error helpers."""

import pytest

from repro.config import ClusterConfig, EngineConfig, paper_cluster
from repro.errors import MatrixShapeError, SimulatedTimeoutError, TaskOutOfMemoryError
from repro.utils import (
    check_multipliable,
    check_positive,
    check_same_shape,
    format_bytes,
    format_seconds,
    render_table,
)


class TestFormatting:
    @pytest.mark.parametrize(
        "value,expected",
        [(0, "0 B"), (512, "512 B"), (2048, "2.0 KB"),
         (3 * 1024 * 1024, "3.0 MB"), (5 * 1024**3, "5.0 GB")],
    )
    def test_format_bytes(self, value, expected):
        assert format_bytes(value) == expected

    def test_format_bytes_negative(self):
        with pytest.raises(ValueError):
            format_bytes(-1)

    @pytest.mark.parametrize(
        "value,expected",
        [(0.5, "500.0 ms"), (30.0, "30.0 s"), (300.0, "5.0 min"),
         (7200.5, "2.00 h")],
    )
    def test_format_seconds(self, value, expected):
        assert format_seconds(value) == expected

    def test_render_table_alignment(self):
        text = render_table(["a", "bbb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_render_table_row_length_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a"], [["1", "2"]])


class TestValidation:
    def test_check_positive(self):
        check_positive("x", 1)
        with pytest.raises(ValueError):
            check_positive("x", 0)

    def test_check_same_shape(self):
        check_same_shape((2, 3), (2, 3))
        with pytest.raises(MatrixShapeError):
            check_same_shape((2, 3), (3, 2))

    def test_check_multipliable(self):
        check_multipliable((2, 3), (3, 4))
        with pytest.raises(MatrixShapeError):
            check_multipliable((2, 3), (4, 3))


class TestConfig:
    def test_total_tasks(self):
        c = ClusterConfig(num_nodes=8, tasks_per_node=12)
        assert c.total_tasks == 96

    def test_invalid_cluster(self):
        with pytest.raises(ValueError):
            ClusterConfig(num_nodes=0)
        with pytest.raises(ValueError):
            ClusterConfig(network_bandwidth=0)

    def test_invalid_engine(self):
        with pytest.raises(ValueError):
            EngineConfig(block_size=0)
        with pytest.raises(ValueError):
            EngineConfig(sparse_threshold=2.0)

    def test_with_cluster_returns_copy(self):
        base = EngineConfig()
        scaled = base.with_cluster(num_nodes=2)
        assert scaled.cluster.num_nodes == 2
        assert base.cluster.num_nodes == 8

    def test_with_options(self):
        base = EngineConfig()
        toggled = base.with_options(sparsity_exploitation=False)
        assert not toggled.sparsity_exploitation
        assert base.sparsity_exploitation

    def test_paper_cluster(self):
        config = paper_cluster()
        assert config.cluster.num_nodes == 8
        assert config.cluster.tasks_per_node == 12
        assert paper_cluster(num_nodes=4).cluster.num_nodes == 4


class TestErrors:
    def test_oom_message(self):
        err = TaskOutOfMemoryError("t3", 200, 100)
        assert "t3" in str(err)
        assert err.used_bytes == 200

    def test_timeout_message(self):
        err = SimulatedTimeoutError(100.0, 50.0)
        assert "100.0" in str(err)
