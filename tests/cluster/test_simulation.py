"""Tests for the Eq. 2 elapsed-time model."""

import pytest

from repro.cluster.simulation import stage_seconds
from repro.config import ClusterConfig


def cluster(**kwargs) -> ClusterConfig:
    defaults = dict(
        num_nodes=4,
        tasks_per_node=10,
        network_bandwidth=1e9,
        compute_bandwidth=1e12,
        task_launch_overhead=0.0,
    )
    defaults.update(kwargs)
    return ClusterConfig(**defaults)


class TestShape:
    def test_zero_tasks_costs_nothing(self):
        assert stage_seconds(cluster(), 0, 10**9, 10**9) == 0.0

    def test_network_bound_stage(self):
        c = cluster()
        # saturate all slots; pure network
        t = stage_seconds(c, 40, net_bytes=4 * 10**9, flops=0)
        assert t == pytest.approx(1.0)

    def test_compute_bound_stage(self):
        c = cluster()
        t = stage_seconds(c, 40, net_bytes=0, flops=4 * 10**12)
        assert t == pytest.approx(1.0)

    def test_overlap_takes_max(self):
        c = cluster()
        both = stage_seconds(c, 40, net_bytes=4 * 10**9, flops=4 * 10**12)
        assert both == pytest.approx(1.0)

    def test_no_overlap_adds(self):
        c = cluster()
        both = stage_seconds(c, 40, net_bytes=4 * 10**9, flops=4 * 10**12,
                             overlap=False)
        assert both == pytest.approx(2.0)

    def test_underutilized_stage_is_slower(self):
        """Few tasks cannot use the whole cluster (the paper's BFO effect)."""
        c = cluster()
        full = stage_seconds(c, 40, net_bytes=10**9, flops=0)
        starved = stage_seconds(c, 4, net_bytes=10**9, flops=0)
        assert starved == pytest.approx(full * 10)

    def test_more_tasks_than_slots_waves(self):
        c = cluster(task_launch_overhead=0.1)
        one_wave = stage_seconds(c, 40, net_bytes=0, flops=0)
        three_waves = stage_seconds(c, 120, net_bytes=0, flops=0)
        assert three_waves == pytest.approx(3 * one_wave)

    def test_scales_with_nodes(self):
        slow = stage_seconds(cluster(num_nodes=2), 20, net_bytes=10**9, flops=0)
        fast = stage_seconds(cluster(num_nodes=8), 80, net_bytes=10**9, flops=0)
        assert slow == pytest.approx(4 * fast)
