"""Property tests relating the two time models.

The aggregate model (Eq. 2 on stage totals) assumes perfect load balance,
so it is a *lower bound* on the event-driven per-slot schedule: any skew
can only lengthen the longest slot timeline.  On perfectly uniform task
sets that either underfill the cluster or fill it in whole waves, greedy
list scheduling achieves the balanced optimum and the two models agree to
floating-point precision.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterRuntime, TaskContext, stage_seconds
from repro.config import ClusterConfig


def build_tasks(costs):
    tasks = []
    for i, (net, flops) in enumerate(costs):
        t = TaskContext(f"t{i}", 1 << 40)
        t.receive(net)
        t.add_flops(flops)
        tasks.append(t)
    return tasks


def aggregate_seconds(cluster, tasks):
    return stage_seconds(
        cluster,
        num_tasks=len(tasks),
        net_bytes=sum(t.consolidation_bytes for t in tasks),
        flops=sum(t.flops for t in tasks),
    )


clusters = st.builds(
    ClusterConfig,
    num_nodes=st.integers(min_value=1, max_value=4),
    tasks_per_node=st.integers(min_value=1, max_value=6),
    task_launch_overhead=st.floats(min_value=0.0, max_value=0.2),
)

#: For the lower-bound property the launch overhead must be zero: the
#: aggregate model bills ceil(n/slots) whole waves of overhead, but a real
#: schedule can hide a straggler inside another slot's overhead time, so
#: only the busy-time component is a true lower bound.
no_overhead_clusters = st.builds(
    ClusterConfig,
    num_nodes=st.integers(min_value=1, max_value=4),
    tasks_per_node=st.integers(min_value=1, max_value=6),
    task_launch_overhead=st.just(0.0),
)

task_costs = st.tuples(
    st.integers(min_value=0, max_value=10**9),  # net bytes
    st.integers(min_value=0, max_value=10**10),  # flops
)


@settings(max_examples=200, deadline=None)
@given(
    cluster=no_overhead_clusters,
    costs=st.lists(task_costs, min_size=1, max_size=40),
)
def test_scheduled_never_beats_aggregate(cluster, costs):
    """Eq. 2's balanced-cluster time lower-bounds any real schedule."""
    tasks = build_tasks(costs)
    scheduled = ClusterRuntime(cluster).run_stage("s", tasks).seconds
    aggregate = aggregate_seconds(cluster, tasks)
    assert scheduled >= aggregate - 1e-9 * max(1.0, aggregate)


@settings(max_examples=200, deadline=None)
@given(
    cluster=clusters,
    cost=task_costs,
    waves=st.integers(min_value=1, max_value=3),
    partial=st.booleans(),
)
def test_uniform_tasks_match_aggregate_exactly(cluster, cost, waves, partial):
    """Uniform tasks in whole waves (or a single partial wave) schedule to
    exactly the aggregate model's balanced time."""
    if partial:
        num_tasks = max(1, cluster.total_tasks - 1)  # one underfull wave
    else:
        num_tasks = waves * cluster.total_tasks
    tasks = build_tasks([cost] * num_tasks)
    scheduled = ClusterRuntime(cluster).run_stage("s", tasks).seconds
    aggregate = aggregate_seconds(cluster, tasks)
    assert math.isclose(scheduled, aggregate, rel_tol=1e-9, abs_tol=1e-12)


@settings(max_examples=100, deadline=None)
@given(cluster=clusters, costs=st.lists(task_costs, min_size=1, max_size=30))
def test_skew_ratio_at_least_one(cluster, costs):
    stage = ClusterRuntime(cluster).run_stage("s", build_tasks(costs))
    assert stage.skew_ratio >= 1.0 - 1e-12


@settings(max_examples=100, deadline=None)
@given(cluster=clusters, costs=st.lists(task_costs, min_size=1, max_size=30))
def test_every_task_runs_exactly_once_without_faults(cluster, costs):
    tasks = build_tasks(costs)
    stage = ClusterRuntime(cluster).run_stage("s", tasks)
    assert stage.num_attempts == len(tasks)
    assert stage.num_retries == 0
    assert {a.task_id for a in stage.attempts} == {t.task_id for t in tasks}
    assert all(a.outcome == "ok" for a in stage.attempts)
