"""Unit tests for the per-task accounting context."""

import numpy as np
import pytest

from repro.blocks import Block
from repro.cluster import TaskContext, TransferKind
from repro.errors import TaskOutOfMemoryError


def ctx(budget=1000) -> TaskContext:
    return TaskContext("t0", budget)


class TestTraffic:
    def test_receive_charges_consolidation(self):
        t = ctx()
        t.receive(100)
        assert t.consolidation_bytes == 100
        assert t.aggregation_bytes == 0

    def test_receive_aggregation(self):
        t = ctx()
        t.receive(50, kind=TransferKind.AGGREGATION)
        assert t.aggregation_bytes == 50
        assert t.consolidation_bytes == 0

    def test_receive_block_uses_nbytes(self):
        t = ctx(budget=10_000)
        block = Block(np.zeros((10, 10)))
        t.receive(block)
        assert t.consolidation_bytes == block.nbytes

    def test_receive_local_costs_no_network(self):
        t = ctx()
        t.receive_local(200)
        assert t.consolidation_bytes == 0
        assert t.memory_used == 200


class TestMemory:
    def test_ledger_accumulates(self):
        t = ctx()
        t.receive(300)
        t.hold_output(200)
        assert t.memory_used == 500
        assert t.peak_memory == 500

    def test_release(self):
        t = ctx()
        t.receive(300)
        t.release(100)
        assert t.memory_used == 200
        assert t.peak_memory == 300

    def test_over_release_raises(self):
        """Releasing more than held masks double-release bugs; must raise."""
        t = ctx()
        with pytest.raises(ValueError, match="double release"):
            t.release(50)

    def test_over_release_after_partial_release_raises(self):
        t = ctx()
        t.receive(300)
        t.release(300)
        with pytest.raises(ValueError):
            t.release(1)

    def test_exact_release_ok(self):
        t = ctx()
        t.receive(300)
        t.release(300)
        assert t.memory_used == 0

    def test_oom_raised_at_budget(self):
        t = ctx(budget=100)
        with pytest.raises(TaskOutOfMemoryError) as exc:
            t.receive(101)
        assert exc.value.task_id == "t0"
        assert exc.value.used_bytes == 101
        assert exc.value.budget_bytes == 100

    def test_exact_budget_ok(self):
        t = ctx(budget=100)
        t.receive(100)
        assert t.memory_used == 100

    def test_oom_from_accumulation(self):
        t = ctx(budget=100)
        t.receive(60)
        with pytest.raises(TaskOutOfMemoryError):
            t.hold_output(60)


class TestFlops:
    def test_accumulate(self):
        t = ctx()
        t.add_flops(10)
        t.add_flops(5)
        assert t.flops == 15

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ctx().add_flops(-1)
