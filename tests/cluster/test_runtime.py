"""Unit tests for the event-driven cluster runtime (scheduler/faults/trace)."""

import json

import pytest

from repro.cluster import SimulatedCluster, TaskContext
from repro.cluster.runtime import (
    ClusterRuntime,
    FaultPlan,
    TraceRecorder,
    validate_chrome_trace,
)
from repro.config import ClusterConfig
from repro.errors import ClusterLostError, TaskRetriesExceededError

from tests.conftest import make_config


def small_cluster(**kwargs) -> ClusterConfig:
    defaults = dict(num_nodes=2, tasks_per_node=2, task_launch_overhead=0.01)
    defaults.update(kwargs)
    return ClusterConfig(**defaults)


def make_tasks(costs, flops=0) -> list:
    tasks = []
    for i, net in enumerate(costs):
        t = TaskContext(f"t{i}", 1 << 40)
        t.receive(net)
        if flops:
            t.add_flops(flops)
        tasks.append(t)
    return tasks


class TestScheduler:
    def test_empty_stage_takes_no_time(self):
        rt = ClusterRuntime(small_cluster())
        stage = rt.run_stage("s", [], start=5.0)
        assert stage.seconds == 0.0
        assert stage.start == stage.end == 5.0

    def test_single_task_occupies_one_slot(self):
        rt = ClusterRuntime(small_cluster())
        stage = rt.run_stage("s", make_tasks([1_000_000]))
        assert stage.num_attempts == 1
        assert stage.attempts[0].slot == 0
        assert stage.attempts[0].outcome == "ok"
        assert stage.seconds > 0

    def test_uniform_tasks_round_robin_slots(self):
        rt = ClusterRuntime(small_cluster())  # 4 slots
        stage = rt.run_stage("s", make_tasks([1000] * 4))
        assert sorted(a.slot for a in stage.attempts) == [0, 1, 2, 3]
        assert stage.skew_ratio == pytest.approx(1.0)

    def test_second_wave_queues_behind_first(self):
        rt = ClusterRuntime(small_cluster())  # 4 slots
        one = rt.run_stage("s", make_tasks([1000] * 4)).seconds
        two = rt.run_stage("s", make_tasks([1000] * 8)).seconds
        assert two == pytest.approx(2 * one)

    def test_skewed_task_dominates_stage(self):
        """One huge task pins the stage to its own slot timeline."""
        rt = ClusterRuntime(small_cluster())
        stage = rt.run_stage("s", make_tasks([100, 100, 100, 10_000_000]))
        big = max(stage.attempts, key=lambda a: a.seconds)
        assert stage.end == pytest.approx(big.end)
        assert stage.skew_ratio > 3.0

    def test_start_offset_shifts_timeline(self):
        rt = ClusterRuntime(small_cluster())
        a = rt.run_stage("s", make_tasks([1000]), start=0.0)
        b = rt.run_stage("s", make_tasks([1000]), start=10.0)
        assert b.seconds == pytest.approx(a.seconds)
        assert b.start == 10.0
        assert b.attempts[0].start >= 10.0

    def test_deterministic_replay(self):
        plan = FaultPlan(crash_prob=0.2, straggler_factor=3.0, seed=7)
        runs = []
        for _ in range(2):
            rt = ClusterRuntime(small_cluster(), fault_plan=plan)
            runs.append(rt.run_stage("s", make_tasks([1000] * 12)))
        assert runs[0] == runs[1]


class TestFaults:
    def test_crash_causes_retry(self):
        # seed chosen so this stage crashes at least once but no task
        # exhausts its attempts
        plan = FaultPlan(crash_prob=0.3, seed=4)
        rt = ClusterRuntime(small_cluster(), fault_plan=plan)
        stage = rt.run_stage("s", make_tasks([1000] * 20))
        crashed = [a for a in stage.attempts if a.outcome == "crashed"]
        assert crashed, "seed must produce at least one crash"
        assert stage.num_retries == len(crashed)
        # every crashed attempt has a later attempt for the same task
        for a in crashed:
            later = [
                b
                for b in stage.attempts
                if b.task_id == a.task_id and b.attempt == a.attempt + 1
            ]
            assert later, a

    def test_retry_respects_backoff(self):
        plan = FaultPlan(crash_prob=0.3, retry_backoff_seconds=5.0, seed=4)
        rt = ClusterRuntime(small_cluster(), fault_plan=plan)
        stage = rt.run_stage("s", make_tasks([1000] * 20))
        for a in stage.attempts:
            if a.outcome != "crashed":
                continue
            retry = next(
                b
                for b in stage.attempts
                if b.task_id == a.task_id and b.attempt == a.attempt + 1
            )
            assert retry.start >= a.end + plan.backoff_seconds(a.attempt)

    def test_certain_crash_exhausts_attempts(self):
        plan = FaultPlan(crash_prob=1.0, max_attempts=3)
        rt = ClusterRuntime(small_cluster(), fault_plan=plan)
        with pytest.raises(TaskRetriesExceededError) as exc:
            rt.run_stage("s", make_tasks([1000]))
        assert exc.value.attempts == 3

    def test_straggler_stretches_attempt(self):
        plan = FaultPlan(straggler_factor=8.0, straggler_prob=1.0)
        healthy = ClusterRuntime(small_cluster()).run_stage(
            "s", make_tasks([1_000_000])
        )
        slowed = ClusterRuntime(small_cluster(), fault_plan=plan).run_stage(
            "s", make_tasks([1_000_000])
        )
        busy_healthy = healthy.seconds - 0.01  # strip launch overhead
        busy_slowed = slowed.seconds - 0.01
        assert busy_slowed == pytest.approx(8.0 * busy_healthy)
        assert slowed.attempts[0].slowdown == 8.0

    def test_node_loss_blacklists_and_retries(self):
        plan = FaultPlan(node_loss_prob=1.0)
        rt = ClusterRuntime(small_cluster(num_nodes=3), fault_plan=plan)
        stage = rt.run_stage("s", make_tasks([1000] * 12))
        assert stage.lost_node is not None
        lost = [a for a in stage.attempts if a.outcome == "node-lost"]
        # each of the lost node's 2 slots kills exactly one attempt
        assert len(lost) == 2
        assert all(a.node == stage.lost_node for a in lost)
        # the lost work reran successfully on surviving nodes
        for a in lost:
            retry = next(
                b
                for b in stage.attempts
                if b.task_id == a.task_id and b.attempt == a.attempt + 1
            )
            assert retry.node != stage.lost_node
        ok = [a for a in stage.attempts if a.outcome == "ok"]
        assert len(ok) == 12

    def test_single_node_loss_kills_cluster(self):
        plan = FaultPlan(node_loss_prob=1.0, max_attempts=10)
        rt = ClusterRuntime(small_cluster(num_nodes=1), fault_plan=plan)
        with pytest.raises(ClusterLostError):
            rt.run_stage("s", make_tasks([1000] * 4))

    def test_fault_plan_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(crash_prob=1.5)
        with pytest.raises(ValueError):
            FaultPlan(straggler_factor=0.5)
        with pytest.raises(ValueError):
            FaultPlan(max_attempts=0)
        with pytest.raises(ValueError):
            FaultPlan(retry_backoff_seconds=-1.0)

    def test_draws_are_stable_across_processes(self):
        """blake2b-based draws, not hash(): values are pinned forever."""
        plan = FaultPlan(crash_prob=0.5, seed=1)
        draws = [plan.crashes("t0", a) for a in range(1, 6)]
        assert draws == [plan.crashes("t0", a) for a in range(1, 6)]
        assert any(draws) and not all(draws)


class TestTrace:
    def scheduled_cluster(self, **fault_kwargs):
        config = make_config(
            time_model="scheduled",
            fault_plan=FaultPlan(**fault_kwargs) if fault_kwargs else None,
        )
        return SimulatedCluster(config)

    def test_trace_auto_attached_in_scheduled_mode(self):
        c = self.scheduled_cluster()
        assert c.trace is not None
        c = SimulatedCluster(make_config())
        assert c.trace is None

    def test_stage_and_task_events_recorded(self):
        c = self.scheduled_cluster()
        with c.stage("s0") as stage:
            stage.task().receive(1000)
            stage.task().receive(2000)
        categories = {e.category for e in c.trace.events}
        assert categories == {"stage", "task", "transfer"}
        tasks = [e for e in c.trace.events if e.category == "task"]
        assert len(tasks) == 2

    def test_chrome_trace_is_valid_json(self, tmp_path):
        c = self.scheduled_cluster(crash_prob=0.3, seed=3)
        for i in range(3):
            with c.stage(f"s{i}") as stage:
                for j in range(6):
                    t = stage.task()
                    t.receive(1000 * (j + 1))
                    t.add_flops(100)
        path = tmp_path / "trace.json"
        c.trace.write_chrome_trace(str(path))
        document = json.loads(path.read_text())
        validate_chrome_trace(document)
        phases = {e["ph"] for e in document["traceEvents"]}
        assert "X" in phases and "M" in phases

    def test_validate_rejects_garbage(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"events": []})
        with pytest.raises(ValueError):
            validate_chrome_trace(
                {"traceEvents": [{"name": "x", "ph": "X", "pid": 0, "tid": 0,
                                  "ts": 0}]}
            )

    def test_summary_mentions_retries(self):
        c = self.scheduled_cluster(crash_prob=0.3, seed=3)
        with c.stage("s0") as stage:
            for j in range(20):
                stage.task().receive(1000)
        assert c.metrics.num_retries > 0
        assert "retry" in c.trace.summary()

    def test_reset_metrics_clears_trace(self):
        c = self.scheduled_cluster()
        with c.stage("s0") as stage:
            stage.task().receive(1000)
        assert len(c.trace) > 0
        c.reset_metrics()
        assert len(c.trace) == 0

    def test_aggregate_mode_records_stage_events_when_trace_attached(self):
        trace = TraceRecorder()
        c = SimulatedCluster(make_config(), trace=trace)
        with c.stage("s0") as stage:
            stage.task().receive(1000)
        assert any(e.category == "stage" for e in trace.events)
        assert not any(e.category == "task" for e in trace.events)
