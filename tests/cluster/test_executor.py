"""Unit tests for SimulatedCluster and Stage."""

import pytest

from repro.cluster import SimulatedCluster
from repro.errors import SimulatedTimeoutError

from tests.conftest import make_config


def cluster(**kwargs) -> SimulatedCluster:
    return SimulatedCluster(make_config(**kwargs))


class TestStageLifecycle:
    def test_stage_records_metrics(self):
        c = cluster()
        with c.stage("s0") as stage:
            task = stage.task()
            task.receive(1000)
            task.add_flops(500)
        assert c.metrics.num_stages == 1
        record = c.metrics.stages[0]
        assert record.consolidation_bytes == 1000
        assert record.flops == 500
        assert record.num_tasks == 1

    def test_task_ids_unique(self):
        c = cluster()
        with c.stage("s0") as stage:
            ids = {stage.task().task_id for _ in range(5)}
        assert len(ids) == 5

    def test_closed_stage_rejects_tasks(self):
        c = cluster()
        stage = c.stage("s0")
        stage.close()
        with pytest.raises(RuntimeError):
            stage.task()

    def test_double_close_rejected(self):
        c = cluster()
        stage = c.stage("s0")
        stage.close()
        with pytest.raises(RuntimeError):
            stage.close()

    def test_error_inside_stage_records_aborted_stage(self):
        """A failing stage body keeps its partial traffic visible (zero
        modeled seconds, aborted=True) instead of vanishing from metrics."""
        c = cluster()
        with pytest.raises(ValueError):
            with c.stage("s0") as stage:
                stage.task().receive(100)
                raise ValueError("boom")
        assert c.metrics.num_stages == 1
        assert c.metrics.num_aborted_stages == 1
        record = c.metrics.stages[0]
        assert record.aborted
        assert record.seconds == 0.0
        assert record.consolidation_bytes == 100
        assert c.metrics.elapsed_seconds == 0.0
        assert c.metrics.comm_bytes == 100

    def test_clean_stages_are_not_aborted(self):
        c = cluster()
        with c.stage("s0") as stage:
            stage.task().receive(100)
        assert c.metrics.num_aborted_stages == 0
        assert not c.metrics.stages[0].aborted

    def test_peak_memory_across_tasks(self):
        c = cluster()
        with c.stage("s0") as stage:
            stage.task().receive(100)
            stage.task().receive(700)
        assert c.metrics.stages[0].peak_task_memory == 700


class TestTiming:
    def test_elapsed_accumulates_across_stages(self):
        c = cluster()
        for name in ("a", "b"):
            with c.stage(name) as stage:
                stage.task().receive(10_000_000)
        assert c.metrics.elapsed_seconds > 0
        assert c.metrics.num_stages == 2

    def test_timeout_enforced(self):
        config = make_config(timeout_seconds=1e-9)
        c = SimulatedCluster(config)
        with pytest.raises(SimulatedTimeoutError):
            with c.stage("slow") as stage:
                stage.task().receive(10_000_000)

    def test_reset_metrics(self):
        c = cluster()
        with c.stage("a") as stage:
            stage.task().receive(10)
        c.reset_metrics()
        assert c.metrics.num_stages == 0

    def test_total_tasks(self):
        c = cluster(num_nodes=3, tasks_per_node=5)
        assert c.total_tasks == 15


class TestLazyRuntime:
    def test_aggregate_mode_never_builds_runtime(self):
        """The event-driven runtime is scheduled-mode machinery; the default
        aggregate cluster must stay runtime-free even after running stages."""
        c = cluster()  # time_model="aggregate"
        assert c._runtime is None
        with c.stage("s") as stage:
            stage.task().add_flops(10)
        assert c._runtime is None

    def test_scheduled_mode_builds_runtime_on_demand(self):
        c = cluster(time_model="scheduled")
        assert c._runtime is None
        with c.stage("s") as stage:
            stage.task().add_flops(10)
        assert c._runtime is not None
        assert c.runtime is c._runtime  # property reuses the instance


class TestUnitScope:
    def test_stages_inherit_thread_unit(self):
        c = cluster()
        with c.stage("outside") as stage:
            stage.task()
        with c.unit_scope(7):
            with c.stage("inside") as stage:
                stage.task()
        records = {s.name: s.unit for s in c.metrics}
        assert records == {"outside": None, "inside": 7}

    def test_unit_scope_nests_and_restores(self):
        c = cluster()
        with c.unit_scope(1):
            with c.unit_scope(2):
                assert c.current_unit == 2
            assert c.current_unit == 1
        assert c.current_unit is None


class TestQueryTrace:
    def test_query_trace_is_isolated_slice(self):
        """Each query's trace holds only its own events, independent of the
        live recorder (per-query trace isolation on shared clusters)."""
        c = cluster(time_model="scheduled")
        c.begin_query()
        with c.stage("q1") as stage:
            stage.task().add_flops(10)
        first = c.query_trace()
        c.begin_query()
        with c.stage("q2") as stage:
            stage.task().add_flops(10)
        second = c.query_trace()

        assert first is not c.trace and second is not c.trace
        first_names = {e.name for e in first.events}
        second_names = {e.name for e in second.events}
        assert any("q1" in n for n in first_names)
        assert not any("q2" in n for n in first_names)
        assert not any("q1" in n for n in second_names)
        assert len(first) + len(second) == len(c.trace)

    def test_query_trace_none_without_recorder(self):
        c = cluster()  # aggregate mode, no trace attached
        c.begin_query()
        assert c.query_trace() is None
