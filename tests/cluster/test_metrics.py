"""Unit tests for MetricsCollector."""

from repro.cluster import MetricsCollector, StageRecord


def record(name="s", tasks=2, consolidation=100, aggregation=10,
           flops=1000, seconds=0.5, peak=50) -> StageRecord:
    return StageRecord(
        name=name,
        num_tasks=tasks,
        consolidation_bytes=consolidation,
        aggregation_bytes=aggregation,
        flops=flops,
        seconds=seconds,
        peak_task_memory=peak,
    )


class TestTotals:
    def test_comm_is_consolidation_plus_aggregation(self):
        m = MetricsCollector()
        m.record(record(consolidation=100, aggregation=10))
        m.record(record(consolidation=200, aggregation=20))
        assert m.consolidation_bytes == 300
        assert m.aggregation_bytes == 30
        assert m.comm_bytes == 330

    def test_elapsed_sums_stages(self):
        m = MetricsCollector()
        m.record(record(seconds=0.5))
        m.record(record(seconds=1.5))
        assert m.elapsed_seconds == 2.0

    def test_peak_task_memory_is_max(self):
        m = MetricsCollector()
        m.record(record(peak=50))
        m.record(record(peak=500))
        m.record(record(peak=5))
        assert m.peak_task_memory == 500

    def test_empty_collector(self):
        m = MetricsCollector()
        assert m.comm_bytes == 0
        assert m.elapsed_seconds == 0.0
        assert m.peak_task_memory == 0

    def test_num_tasks(self):
        m = MetricsCollector()
        m.record(record(tasks=3))
        m.record(record(tasks=4))
        assert m.num_tasks == 7


class TestBookkeeping:
    def test_reset(self):
        m = MetricsCollector()
        m.record(record())
        m.reset()
        assert m.num_stages == 0

    def test_copy_is_independent(self):
        m = MetricsCollector()
        m.record(record())
        baseline = m.copy()
        m.record(record())
        assert baseline.num_stages == 1
        assert m.num_stages == 2

    def test_diff_since(self):
        m = MetricsCollector()
        m.record(record(consolidation=100))
        baseline = m.copy()
        m.record(record(consolidation=999))
        diff = m.diff_since(baseline)
        assert diff.num_stages == 1
        assert diff.consolidation_bytes == 999

    def test_diff_since_counter_deltas(self):
        m = MetricsCollector()
        m.bump("plan_cache_hits")
        baseline = m.copy()
        m.bump("plan_cache_hits", 2)
        m.bump("pool_tasks", 5)
        diff = m.diff_since(baseline)
        assert diff.counters == {"plan_cache_hits": 2, "pool_tasks": 5}

    def test_snapshot_is_a_plain_dict(self):
        """snapshot() embeds totals + counters without private fields."""
        m = MetricsCollector()
        m.record(record(consolidation=100, tasks=3))
        m.bump("plan_cache_hits")
        m.bump_max("pool_width_max", 4)
        snap = m.snapshot()
        assert isinstance(snap, dict)
        assert snap["num_stages"] == 1
        assert snap["consolidation_bytes"] == 100
        assert snap["counters"] == {"plan_cache_hits": 1, "pool_width_max": 4}
        # detached from the collector: later recording does not mutate it
        m.record(record())
        assert snap["num_stages"] == 1

    def test_iteration(self):
        m = MetricsCollector()
        m.record(record(name="a"))
        m.record(record(name="b"))
        assert [s.name for s in m] == ["a", "b"]

    def test_summary_mentions_key_figures(self):
        m = MetricsCollector()
        m.record(record())
        text = m.summary()
        assert "stages" in text and "comm" in text


class TestConcurrentReads:
    """Regression: lock-consistent reads while pool threads mutate.

    With ``local_parallelism > 1`` pool threads record stages and bump
    counters while the driver reads totals.  Every read path must take a
    snapshot under the lock — iterating a mutating list/dict, or summing a
    list that grows mid-sum, produces torn values (or raises).  Each stage
    below writes internally-consistent numbers, so any torn read shows up
    as a broken invariant.
    """

    def test_readers_see_consistent_snapshots_under_writes(self):
        import threading

        m = MetricsCollector()
        stop = threading.Event()
        errors = []

        def writer():
            i = 0
            while not stop.is_set():
                m.record(StageRecord(
                    name=f"s{i}",
                    num_tasks=2,
                    consolidation_bytes=100,
                    aggregation_bytes=10,
                    flops=1000,
                    seconds=0.5,
                    peak_task_memory=50,
                    unit=i % 4,
                ))
                m.bump("pool_tasks", 2)
                m.bump_max("pool_width_max", i % 8)
                i += 1

        def reader():
            baseline = m.copy()
            while not stop.is_set():
                try:
                    totals = m.totals()
                    # one snapshot => mutually consistent numbers
                    assert totals["num_tasks"] == 2 * totals["num_stages"]
                    assert totals["consolidation_bytes"] == (
                        100 * totals["num_stages"]
                    )
                    assert m.comm_bytes % 110 == 0
                    snap = m.snapshot()
                    assert snap["counters"].get("pool_tasks", 0) % 2 == 0
                    per_unit = m.per_unit_totals()
                    assert sum(
                        u["num_stages"] for u in per_unit.values()
                    ) <= m.num_stages
                    diff = m.diff_since(baseline)
                    assert diff.num_tasks == 2 * diff.num_stages
                    for stage in m:
                        assert stage.num_tasks == 2
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)
                    stop.set()
                    return

        writers = [threading.Thread(target=writer) for _ in range(2)]
        readers = [threading.Thread(target=reader) for _ in range(3)]
        for t in writers + readers:
            t.start()
        import time
        time.sleep(0.4)
        stop.set()
        for t in writers + readers:
            t.join()
        assert not errors, errors[0]
        # final state is sane after the storm
        assert m.num_tasks == 2 * m.num_stages

    def test_concurrent_bumps_never_lose_increments(self):
        import threading

        m = MetricsCollector()

        def bump_many():
            for _ in range(1000):
                m.bump("hits")

        threads = [threading.Thread(target=bump_many) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert m.counter("hits") == 4000
