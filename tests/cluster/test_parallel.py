"""Guard tests for the thread dispatch seam (`repro.cluster.parallel`)."""

import pytest

from repro.cluster.metrics import MetricsCollector
from repro.cluster.parallel import parallel_map


def test_results_in_submission_order():
    assert parallel_map(lambda x: x * x, range(8), parallelism=4) == [
        0, 1, 4, 9, 16, 25, 36, 49,
    ]


@pytest.mark.parametrize("bad", [0, -1, -8])
def test_nonpositive_parallelism_raises(bad):
    with pytest.raises(ValueError, match="parallelism must be positive"):
        parallel_map(lambda x: x, [1, 2, 3], parallelism=bad)


def test_nonpositive_parallelism_raises_even_for_serial_shapes():
    # the guard fires before the serial short-circuits (<=1 item, etc.):
    # a bad worker count is a caller bug regardless of batch size
    with pytest.raises(ValueError):
        parallel_map(lambda x: x, [1], parallelism=0)
    with pytest.raises(ValueError):
        parallel_map(lambda x: x, [], parallelism=-2)


def test_no_nested_pools():
    """A parallel_map reached from inside a pool worker degrades to the
    serial loop instead of nesting a second thread pool."""
    metrics = MetricsCollector()

    def outer(item):
        # inner map with its own metrics: if it ran on a pool it would bump
        # inner_batches; the nested-pool guard must keep it serial
        inner_metrics = MetricsCollector()
        inner = parallel_map(
            lambda x: x + 1, [10, 20, 30], parallelism=4,
            metrics=inner_metrics, counter_prefix="inner",
        )
        assert inner_metrics.counters.get("inner_batches", 0) == 0
        return (item, inner)

    results = parallel_map(
        outer, [1, 2, 3, 4], parallelism=4,
        metrics=metrics, counter_prefix="outer",
    )
    assert results == [(i, [11, 21, 31]) for i in (1, 2, 3, 4)]
    # the outer map itself did use the pool
    assert metrics.counters["outer_batches"] == 1
    assert metrics.counters["outer_tasks"] == 4


def test_exceptions_propagate_in_submission_order():
    def fn(item):
        if item % 2:
            raise RuntimeError(f"item {item}")
        return item

    with pytest.raises(RuntimeError, match="item 1"):
        parallel_map(fn, [0, 1, 2, 3], parallelism=4)
