"""Unit tests for the process-pool substrate (`repro.cluster.procpool`).

Pool mechanics (spawn workers, ordering, error vs crash, bounded respawn,
pool-broken salvage) and the shared-memory block store (dense + sparse
round trips, zero-copy refs, spill fallback, lifecycle).
"""

import os

import numpy as np
import pytest
import scipy.sparse as sp

from repro.cluster.procpool import (
    PoolBrokenError,
    ProcessPool,
    SharedBlockStore,
    open_matrix,
    write_matrix,
)
from repro.cluster.procpool.testing import (
    crash_once_task,
    crash_task,
    double_task,
    echo_task,
    fail_task,
)
from repro.matrix import rand_dense, rand_sparse


@pytest.fixture(scope="module")
def pool():
    """One persistent pool for the fast-path tests (spawn cost amortized)."""
    with ProcessPool(2) as pool:
        yield pool


class TestProcessPool:
    def test_results_in_submission_order(self, pool):
        outs = pool.run_tasks([(double_task, i) for i in range(7)])
        assert [o.value for o in outs] == [0, 2, 4, 6, 8, 10, 12]
        assert [o.index for o in outs] == list(range(7))

    def test_empty_batch(self, pool):
        assert pool.run_tasks([]) == []

    def test_pool_is_lazy(self):
        pool = ProcessPool(2)
        assert not pool.started
        pool.close()

    def test_task_error_is_reported_not_raised(self, pool):
        outs = pool.run_tasks(
            [(double_task, 1), (fail_task, "boom"), (echo_task, "z")]
        )
        assert outs[0].value == 2
        assert isinstance(outs[1].error, ValueError)
        assert "boom" in str(outs[1].error)
        assert outs[2].value == "z"

    def test_outcomes_carry_timing(self, pool):
        (out,) = pool.run_tasks([(double_task, 3)])
        assert out.worker_id in (0, 1)
        assert out.completed_at >= out.submitted_at

    def test_nonpositive_width_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            ProcessPool(0)

    def test_crash_respawns_and_retries(self, tmp_path):
        marker = str(tmp_path / "crash-marker")
        with ProcessPool(2) as pool:
            outs = pool.run_tasks(
                [(double_task, 5), (crash_once_task, marker)]
            )
            assert [o.value for o in outs] == [10, "recovered"]
            assert pool.stats.respawns == 1
            assert os.path.exists(marker)
            # the pool survives and keeps serving batches
            outs = pool.run_tasks([(echo_task, "still-alive")])
            assert outs[0].value == "still-alive"

    def test_persistent_crash_breaks_pool_with_salvage(self):
        with ProcessPool(2) as pool:
            with pytest.raises(PoolBrokenError) as info:
                pool.run_tasks([(crash_task, {}), (double_task, 4)])
            salvaged = info.value.completed
            assert salvaged and salvaged[1].value == 8
            assert pool.broken
            # a broken pool refuses new batches
            with pytest.raises(PoolBrokenError):
                pool.run_tasks([(echo_task, 1)])

    def test_stats_accumulate(self, pool):
        before = pool.stats.tasks
        pool.run_tasks([(echo_task, i) for i in range(3)])
        assert pool.stats.tasks == before + 3
        assert pool.stats.as_dict()["workers"] == 2


class TestSharedBlockStore:
    def test_dense_roundtrip_is_bit_identical(self):
        matrix = rand_dense(30, 20, 10, seed=3)
        with SharedBlockStore() as store:
            ref = store.register(matrix)
            rebuilt, close = open_matrix(ref)
            try:
                assert (
                    rebuilt.to_numpy().tobytes() == matrix.to_numpy().tobytes()
                )
                assert rebuilt.version == matrix.version
            finally:
                close()

    def test_sparse_roundtrip_keeps_csr(self):
        matrix = rand_sparse(40, 30, density=0.2, block_size=10, seed=4)
        with SharedBlockStore() as store:
            rebuilt, close = open_matrix(store.register(matrix))
            try:
                for (key, block), (key2, block2) in zip(
                    matrix.iter_blocks(), rebuilt.iter_blocks()
                ):
                    assert key == key2
                    if block.is_sparse:
                        assert block2.is_sparse
                        assert sp.issparse(block2.data)
                    got = (
                        block2.data.toarray()
                        if block2.is_sparse else block2.data
                    )
                    want = (
                        block.data.toarray() if block.is_sparse else block.data
                    )
                    assert np.asarray(got).tobytes() == np.asarray(want).tobytes()
            finally:
                close()

    def test_views_are_read_only(self):
        matrix = rand_dense(10, 10, 10, seed=5)
        with SharedBlockStore() as store:
            rebuilt, close = open_matrix(store.register(matrix))
            try:
                block = next(iter(rebuilt.blocks.values()))
                with pytest.raises(ValueError):
                    block.data[0, 0] = 99.0
            finally:
                close()

    def test_register_dedups_by_identity_and_version(self):
        matrix = rand_dense(10, 10, 10, seed=6)
        with SharedBlockStore() as store:
            ref1 = store.register(matrix)
            ref2 = store.register(matrix)
            assert ref1 is ref2

    def test_spill_fallback_to_files(self):
        matrix = rand_dense(10, 10, 10, seed=7)
        with SharedBlockStore(prefer_shm=False) as store:
            ref = store.register(matrix)
            assert ref.segment.kind == "file"
            rebuilt, close = open_matrix(ref)
            try:
                assert (
                    rebuilt.to_numpy().tobytes() == matrix.to_numpy().tobytes()
                )
            finally:
                close()

    def test_write_matrix_then_adopt(self, tmp_path):
        matrix = rand_dense(20, 20, 10, seed=8)
        ref = write_matrix(matrix, str(tmp_path))
        store = SharedBlockStore()
        try:
            adopted = store.adopt(ref)
            assert store.owns(adopted)
            assert adopted.to_numpy().tobytes() == matrix.to_numpy().tobytes()
            copied = store.detach_copy(adopted)
            assert not store.owns(copied)
        finally:
            store.close()
        # the detached copy survives segment unlinking
        assert copied.to_numpy().tobytes() == matrix.to_numpy().tobytes()

    def test_close_removes_spill_directory(self):
        store = SharedBlockStore(prefer_shm=False)
        store.register(rand_dense(10, 10, 10, seed=9))
        directory = store.directory
        assert os.path.isdir(directory)
        store.close()
        assert not os.path.exists(directory)

    def test_release_unlinks_file_segment(self, tmp_path):
        matrix = rand_dense(10, 10, 10, seed=10)
        ref = write_matrix(matrix, str(tmp_path))
        store = SharedBlockStore()
        try:
            adopted = store.adopt(ref)
            assert os.path.exists(ref.segment.name)
            store.release(adopted)
            assert not os.path.exists(ref.segment.name)
        finally:
            store.close()
