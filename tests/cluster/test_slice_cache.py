"""SliceCache: sharing, version invalidation, eviction, correctness."""

import numpy as np

from repro import FuseMEEngine
from repro.blocks.block import Block
from repro.cluster.slice_cache import SliceCache
from repro.lang import matrix_input
from repro.matrix import rand_dense

from tests.conftest import make_config

BS = 25


def matrix(seed=1, n=100):
    return rand_dense(n, n, BS, seed=seed)


class TestSharing:
    def test_same_range_is_materialized_once(self):
        cache = SliceCache()
        m = matrix()
        first = cache.get(m, (0, 2), (0, 2))
        second = cache.get(m, (0, 2), (0, 2))
        assert second is first
        assert cache.hits == 1 and cache.misses == 1

    def test_distinct_ranges_are_distinct_entries(self):
        cache = SliceCache()
        m = matrix()
        a = cache.get(m, (0, 2), (0, 2))
        b = cache.get(m, (2, 4), (0, 2))
        assert a is not b
        assert cache.num_entries == 2

    def test_slab_content_matches_direct_materialization(self):
        cache = SliceCache()
        m = matrix()
        slab = cache.get(m, (1, 3), (0, 4))
        direct = m.block_slice((1, 3), (0, 4)).as_single_block()
        assert np.array_equal(slab.to_numpy(), direct.to_numpy())


class TestVersionInvalidation:
    def test_set_block_invalidates_cached_slabs(self):
        """Mutating a matrix must never serve the stale materialization."""
        cache = SliceCache()
        m = matrix()
        stale = cache.get(m, (0, 2), (0, 2))

        m.set_block(0, 0, Block(np.full((BS, BS), 9.0)))

        fresh = cache.get(m, (0, 2), (0, 2))
        assert fresh is not stale
        assert cache.hits == 0 and cache.misses == 2
        assert fresh.to_numpy()[0, 0] == 9.0
        assert stale.to_numpy()[0, 0] != 9.0  # old slab untouched

    def test_unmutated_version_still_hits(self):
        cache = SliceCache()
        m = matrix()
        version = m.version
        cache.get(m, (0, 2), (0, 2))
        cache.get(m, (0, 2), (0, 2))
        assert m.version == version
        assert cache.hits == 1

    def test_engine_level_regression(self):
        """set_block between executes flows through to fresh results."""
        engine = FuseMEEngine(make_config())
        m = matrix(n=50)
        query = matrix_input("X", 50, 50, BS) * 1.0
        before = engine.execute(query, {"X": m}).output(0).to_numpy()
        m.set_block(0, 0, Block(np.full((BS, BS), 3.5)))
        after = engine.execute(query, {"X": m}).output(0).to_numpy()
        assert not np.array_equal(before, after)
        assert np.all(after[:BS, :BS] == 3.5)


class TestDisabledAndEviction:
    def test_disabled_cache_always_copies(self):
        cache = SliceCache(enabled=False)
        m = matrix()
        a = cache.get(m, (0, 2), (0, 2))
        b = cache.get(m, (0, 2), (0, 2))
        assert a is not b
        assert cache.num_entries == 0
        assert np.array_equal(a.to_numpy(), b.to_numpy())

    def test_lru_eviction_respects_max_bytes(self):
        m = matrix()
        slab_bytes = m.block_slice((0, 1), (0, 1)).as_single_block().nbytes
        cache = SliceCache(max_bytes=2 * slab_bytes)
        cache.get(m, (0, 1), (0, 1))
        cache.get(m, (1, 2), (0, 1))
        cache.get(m, (2, 3), (0, 1))  # evicts the (0,1) entry
        assert cache.num_entries == 2
        assert cache.cached_bytes <= 2 * slab_bytes
        cache.get(m, (0, 1), (0, 1))
        assert cache.misses == 4  # re-materialized after eviction

    def test_reset_clears_entries_and_counters(self):
        cache = SliceCache()
        cache.get(matrix(), (0, 1), (0, 1))
        cache.reset()
        assert cache.num_entries == 0
        assert cache.hits == 0 and cache.misses == 0
        assert cache.cached_bytes == 0

    def test_stats_dict(self):
        cache = SliceCache()
        m = matrix()
        cache.get(m, (0, 1), (0, 1))
        cache.get(m, (0, 1), (0, 1))
        stats = cache.stats()
        assert stats["enabled"] is True
        assert stats["entries"] == 1
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5
        assert stats["bytes"] == cache.cached_bytes
