"""Unit tests for cuboid partitioning."""

import pytest

from repro.core.cuboid import CuboidPartitioning, chunk_ranges
from repro.errors import OptimizerError


class TestChunkRanges:
    def test_even_split(self):
        assert chunk_ranges(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_uneven_split_front_loaded(self):
        assert chunk_ranges(7, 3) == [(0, 3), (3, 5), (5, 7)]

    def test_single_part(self):
        assert chunk_ranges(5, 1) == [(0, 5)]

    def test_parts_equal_extent(self):
        assert chunk_ranges(3, 3) == [(0, 1), (1, 2), (2, 3)]

    def test_covers_everything_exactly(self):
        for extent in range(1, 20):
            for parts in range(1, extent + 1):
                ranges = chunk_ranges(extent, parts)
                assert ranges[0][0] == 0
                assert ranges[-1][1] == extent
                for (a0, a1), (b0, b1) in zip(ranges, ranges[1:]):
                    assert a1 == b0
                    assert a1 > a0

    def test_too_many_parts_rejected(self):
        with pytest.raises(ValueError):
            chunk_ranges(3, 4)

    def test_zero_parts_rejected(self):
        with pytest.raises(ValueError):
            chunk_ranges(3, 0)


class TestCuboidPartitioning:
    def test_counts(self):
        c = CuboidPartitioning(8, 6, 4, 2, 3, 2)
        assert c.num_cuboids == 12
        assert c.voxels == 8 * 6 * 4

    def test_cuboid_enumeration(self):
        c = CuboidPartitioning(4, 4, 4, 2, 2, 2)
        cuboids = list(c.cuboids())
        assert len(cuboids) == 8
        assert cuboids[0] == (0, 0, 0)
        assert cuboids[-1] == (1, 1, 1)

    def test_cuboid_ranges(self):
        c = CuboidPartitioning(8, 6, 4, 2, 3, 2)
        i_range, j_range, k_range = c.cuboid_ranges(1, 2, 0)
        assert i_range == (4, 8)
        assert j_range == (4, 6)
        assert k_range == (0, 2)

    def test_paper_figure4_example(self):
        """(P=4, Q=2, R=1) over a 4x4x4 space: 8 cuboids of 1x2x4 voxels."""
        c = CuboidPartitioning(4, 4, 4, 4, 2, 1)
        assert c.num_cuboids == 8
        i_range, j_range, k_range = c.cuboid_ranges(0, 0, 0)
        assert (i_range[1] - i_range[0]) == 1
        assert (j_range[1] - j_range[0]) == 2
        assert (k_range[1] - k_range[0]) == 4

    def test_out_of_bounds_parameters(self):
        with pytest.raises(OptimizerError):
            CuboidPartitioning(4, 4, 4, 5, 1, 1)
        with pytest.raises(OptimizerError):
            CuboidPartitioning(4, 4, 4, 0, 1, 1)

    def test_pqr_property(self):
        assert CuboidPartitioning(4, 4, 4, 2, 1, 4).pqr == (2, 1, 4)
