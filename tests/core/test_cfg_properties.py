"""Property-based tests on the fusion plan generator.

Random multi-operator DAGs (with shared subexpressions, aggregations and
several multiplications) are planned by CFG and by GEN; both must always
produce valid fusion plans — every operator covered exactly once, units in
dependency order — and executing the CFG plan must match the reference
interpreter.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import FuseMEEngine, SystemDSLikeEngine
from repro.baselines.gen import GenPlanner
from repro.core.cfg import generate_fusion_plan
from repro.lang import DAG, evaluate_many, log, matrix_input, sq, sum_of
from repro.matrix import rand_dense, rand_sparse

from tests.conftest import make_config

BS = 25
M, N, K = 75, 50, 25

INPUTS = {
    "X": rand_sparse(M, N, 0.1, BS, seed=21),
    "U": rand_dense(M, K, BS, seed=22),
    "V": rand_dense(K, N, BS, seed=23),
    "Y": rand_dense(M, N, BS, seed=24),
}
DENSE = {k: m.to_numpy() for k, m in INPUTS.items()}


def leaves():
    return {
        "X": matrix_input("X", M, N, BS, density=0.1),
        "U": matrix_input("U", M, K, BS),
        "V": matrix_input("V", K, N, BS),
        "Y": matrix_input("Y", M, N, BS),
    }


@st.composite
def random_dags(draw):
    """A DAG with shared products, element-wise layers and 1-2 roots."""
    env = leaves()
    product = env["U"] @ env["V"]          # shared by several consumers
    pool = [product, env["X"], env["Y"]]
    for _ in range(draw(st.integers(1, 4))):
        op = draw(st.sampled_from(["mul", "add", "scale", "log1", "sq"]))
        a = draw(st.sampled_from(pool))
        if op == "mul":
            b = draw(st.sampled_from(pool))
            pool.append(a * b)
        elif op == "add":
            b = draw(st.sampled_from(pool))
            pool.append(a + b)
        elif op == "scale":
            pool.append(a * 2.0)
        elif op == "log1":
            pool.append(log(sq(a) + 1.0))
        else:
            pool.append(sq(a))
    roots = [pool[-1]]
    if draw(st.booleans()):
        roots.append(sum_of(draw(st.sampled_from(pool))))
    return DAG([r.node for r in roots])


def assert_valid_plan(dag, fusion_plan):
    covered = []
    for unit in fusion_plan:
        covered.extend(unit.plan.nodes)
    operators = [n for n in dag.nodes() if n.is_operator]
    assert sorted(n.node_id for n in covered) == sorted(
        n.node_id for n in operators
    )
    produced = set()
    for unit in fusion_plan:
        for dep in unit.dependencies():
            if dep.is_operator:
                assert dep in produced
        produced.update(unit.outputs)


@settings(max_examples=25, deadline=None)
@given(random_dags())
def test_cfg_plans_are_always_valid(dag):
    fusion_plan = generate_fusion_plan(dag, make_config())
    assert_valid_plan(dag, fusion_plan)


@settings(max_examples=25, deadline=None)
@given(random_dags())
def test_gen_plans_are_always_valid(dag):
    fusion_plan = GenPlanner(make_config()).plan(dag)
    assert_valid_plan(dag, fusion_plan)


@settings(max_examples=15, deadline=None)
@given(random_dags())
def test_cfg_execution_matches_reference(dag):
    result = FuseMEEngine(make_config()).execute(dag, INPUTS)
    expected = evaluate_many(list(dag.roots), DENSE)
    for root, value in zip(result.dag.roots, expected):
        np.testing.assert_allclose(
            result.outputs[root].to_numpy(),
            np.atleast_2d(value),
            atol=1e-7, rtol=1e-7,
        )


@settings(max_examples=10, deadline=None)
@given(random_dags())
def test_gen_execution_matches_reference(dag):
    result = SystemDSLikeEngine(make_config()).execute(dag, INPUTS)
    expected = evaluate_many(list(dag.roots), DENSE)
    for root, value in zip(result.dag.roots, expected):
        np.testing.assert_allclose(
            result.outputs[root].to_numpy(),
            np.atleast_2d(value),
            atol=1e-7, rtol=1e-7,
        )
