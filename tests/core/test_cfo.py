"""Tests for the Cuboid-based Fused Operator: correctness against the
reference interpreter across partitionings, masking, aggregation roots,
ragged grids, and measured-vs-modeled communication."""

import numpy as np
import pytest

from repro.cluster import SimulatedCluster
from repro.core.cfo import CuboidFusedOperator
from repro.core.cost import CostModel
from repro.core.plan import PartialFusionPlan
from repro.lang import DAG, colsum, evaluate, log, matrix_input, nnz_mask, rowsum, sq, sum_of
from repro.matrix import rand_dense, rand_sparse

from tests.conftest import make_config

BS = 25


def build(expr_fn, shapes, densities=None, bs=BS, seed=0):
    """Build (plan, env, dense reference env) from an expression factory."""
    densities = densities or {}
    exprs, matrices, dense_env = {}, {}, {}
    for i, (name, (rows, cols)) in enumerate(shapes.items()):
        density = densities.get(name, 1.0)
        exprs[name] = matrix_input(name, rows, cols, bs, density=density)
        if density < 1.0:
            matrices[name] = rand_sparse(rows, cols, density, bs, seed=seed + i)
        else:
            matrices[name] = rand_dense(rows, cols, bs, seed=seed + i)
        dense_env[name] = matrices[name].to_numpy()
    expr = expr_fn(**exprs)
    dag = DAG(expr.node)
    plan = PartialFusionPlan(set(dag.operators()), dag)
    return plan, matrices, dense_env, dag


def run_cfo(plan, matrices, config=None, pqr=None):
    config = config or make_config(block_size=BS)
    cfo = CuboidFusedOperator(plan, config, pqr=pqr)
    cluster = SimulatedCluster(config)
    out = cfo.execute(cluster, matrices)
    return out, cluster, cfo


NMF_SHAPES = {"X": (200, 150), "U": (200, 50), "V": (150, 50)}


def nmf_expr(X, U, V):
    return X * log(U @ V.T + 1e-8)


class TestCorrectness:
    @pytest.mark.parametrize("pqr", [(1, 1, 1), (2, 2, 2), (8, 6, 2), (4, 3, 1), (1, 1, 2)])
    def test_every_partitioning_matches_reference(self, pqr):
        plan, matrices, env, dag = build(nmf_expr, NMF_SHAPES, {"X": 0.05})
        expected = evaluate(dag.roots[0], env)
        out, _, _ = run_cfo(plan, matrices, pqr=pqr)
        np.testing.assert_allclose(out.to_numpy(), expected, atol=1e-8)

    def test_optimized_parameters_match_reference(self):
        plan, matrices, env, dag = build(nmf_expr, NMF_SHAPES, {"X": 0.05})
        expected = evaluate(dag.roots[0], env)
        out, _, cfo = run_cfo(plan, matrices)
        assert cfo.optimizer_result is not None
        np.testing.assert_allclose(out.to_numpy(), expected, atol=1e-8)

    def test_dense_mask_disables_exploitation_but_stays_correct(self):
        plan, matrices, env, dag = build(nmf_expr, NMF_SHAPES, {"X": 0.9})
        expected = evaluate(dag.roots[0], env)
        out, _, cfo = run_cfo(plan, matrices, pqr=(2, 2, 2))
        assert cfo.mask is None
        np.testing.assert_allclose(out.to_numpy(), expected, atol=1e-8)

    def test_sparsity_exploitation_active_on_sparse_mask(self):
        plan, matrices, env, dag = build(nmf_expr, NMF_SHAPES, {"X": 0.02})
        _, _, cfo = run_cfo(plan, matrices)
        assert cfo.mask is not None

    def test_exploitation_toggle(self):
        plan, matrices, env, dag = build(nmf_expr, NMF_SHAPES, {"X": 0.02})
        config = make_config(block_size=BS, sparsity_exploitation=False)
        _, _, cfo = run_cfo(plan, matrices, config=config)
        assert cfo.mask is None

    def test_ragged_grid(self):
        shapes = {"X": (190, 130), "U": (190, 40), "V": (130, 40)}
        plan, matrices, env, dag = build(nmf_expr, shapes, {"X": 0.05})
        expected = evaluate(dag.roots[0], env)
        out, _, _ = run_cfo(plan, matrices, pqr=(3, 2, 2))
        np.testing.assert_allclose(out.to_numpy(), expected, atol=1e-8)

    def test_sum_root(self):
        def loss(X, U, V):
            return sum_of(nnz_mask(X) * sq(X - U @ V.T))

        plan, matrices, env, dag = build(loss, NMF_SHAPES, {"X": 0.05})
        expected = evaluate(dag.roots[0], env)
        out, _, _ = run_cfo(plan, matrices, pqr=(2, 2, 2))
        np.testing.assert_allclose(out.to_numpy(), expected, rtol=1e-9)

    def test_rowsum_root(self):
        def expr(X, U, V):
            return rowsum(X * (U @ V.T))

        plan, matrices, env, dag = build(expr, NMF_SHAPES, {"X": 0.05})
        expected = evaluate(dag.roots[0], env)
        out, _, _ = run_cfo(plan, matrices, pqr=(4, 2, 1))
        np.testing.assert_allclose(out.to_numpy(), expected, atol=1e-8)

    def test_colsum_root(self):
        def expr(X, U, V):
            return colsum(X * (U @ V.T))

        plan, matrices, env, dag = build(expr, NMF_SHAPES, {"X": 0.05})
        expected = evaluate(dag.roots[0], env)
        out, _, _ = run_cfo(plan, matrices, pqr=(2, 3, 2))
        np.testing.assert_allclose(out.to_numpy(), expected, atol=1e-8)

    def test_transposed_root(self):
        def expr(X, U, V):
            return (U @ V.T).T

        plan, matrices, env, dag = build(expr, NMF_SHAPES, {"X": 0.05})
        expected = evaluate(dag.roots[0], env)
        out, _, _ = run_cfo(plan, matrices, pqr=(2, 2, 1))
        np.testing.assert_allclose(out.to_numpy(), expected, atol=1e-8)

    def test_nested_matmuls_gnmf(self):
        def expr(X, U, V):
            return U * (V.T @ X) / (V.T @ V @ U + 1e-9)

        shapes = {"X": (200, 150), "U": (50, 150), "V": (200, 50)}
        plan, matrices, env, dag = build(expr, shapes, {"X": 0.05})
        expected = evaluate(dag.roots[0], env)
        out, _, _ = run_cfo(plan, matrices, pqr=(2, 3, 2))
        np.testing.assert_allclose(out.to_numpy(), expected, atol=1e-7)


class TestAccounting:
    def test_measured_consolidation_tracks_model(self):
        """Measured consolidation bytes match NetEst within sparse-estimate
        tolerance (the model uses estimated densities)."""
        plan, matrices, env, dag = build(nmf_expr, NMF_SHAPES, {"X": 0.05})
        config = make_config(block_size=BS)
        pqr = (2, 3, 2)
        out, cluster, cfo = run_cfo(plan, matrices, config=config, pqr=pqr)
        model = CostModel(config)
        predicted = model.net_est(cfo.tree, pqr)
        measured = cluster.metrics.consolidation_bytes
        assert measured == pytest.approx(predicted, rel=0.35)

    def test_r1_has_no_aggregation_traffic(self):
        plan, matrices, env, dag = build(nmf_expr, NMF_SHAPES, {"X": 0.05})
        out, cluster, _ = run_cfo(plan, matrices, pqr=(4, 3, 1))
        assert cluster.metrics.aggregation_bytes == 0

    def test_r2_produces_aggregation_traffic(self):
        plan, matrices, env, dag = build(nmf_expr, NMF_SHAPES, {"X": 0.05})
        out, cluster, _ = run_cfo(plan, matrices, pqr=(4, 3, 2))
        assert cluster.metrics.aggregation_bytes > 0

    def test_task_count_equals_cuboids(self):
        plan, matrices, env, dag = build(nmf_expr, NMF_SHAPES, {"X": 0.05})
        out, cluster, _ = run_cfo(plan, matrices, pqr=(4, 3, 1))
        assert cluster.metrics.stages[0].num_tasks == 12

    def test_flops_lower_with_sparse_mask(self):
        sparse_plan = build(nmf_expr, NMF_SHAPES, {"X": 0.02})
        dense_plan = build(nmf_expr, NMF_SHAPES, {"X": 1.0})
        _, sparse_cluster, _ = run_cfo(sparse_plan[0], sparse_plan[1], pqr=(2, 2, 1))
        _, dense_cluster, _ = run_cfo(dense_plan[0], dense_plan[1], pqr=(2, 2, 1))
        assert sparse_cluster.metrics.flops < dense_cluster.metrics.flops / 3

    def test_oom_when_budget_too_small(self):
        from repro.errors import TaskOutOfMemoryError

        plan, matrices, env, dag = build(nmf_expr, NMF_SHAPES, {"X": 1.0})
        config = make_config(block_size=BS, task_memory_budget=10_000)
        with pytest.raises(TaskOutOfMemoryError):
            run_cfo(plan, matrices, config=config, pqr=(1, 1, 1))
