"""Calibration: bucketing, fitting, store gating, persistence, threading."""

import math
import threading

import numpy as np
import pytest

from repro.config import EngineConfig
from repro.core.calibration import (
    ANY_BUCKET,
    CalibrationStore,
    KernelCalibration,
    Observation,
    fit_throughput,
    sparsity_bucket,
)
from repro.core.plan_cache import PlanCache, PlanCacheEntry

from tests.conftest import make_config


def obs(net, flops, measured, predicted=None):
    return Observation(
        net_bytes=net, flops=flops, measured_seconds=measured,
        predicted_seconds=predicted,
    )


def planted_rows(inv_net, inv_com, overhead, points):
    return [
        obs(n, f, n * inv_net + f * inv_com + overhead) for n, f in points
    ]


class TestSparsityBucket:
    def test_thresholds(self):
        assert sparsity_bucket(None) == "dense"
        assert sparsity_bucket(1.0) == "dense"
        assert sparsity_bucket(0.4) == "dense"
        assert sparsity_bucket(0.39) == "mid"
        assert sparsity_bucket(0.05) == "mid"
        assert sparsity_bucket(0.049) == "sparse"
        assert sparsity_bucket(0.0) == "sparse"


class TestFitThroughput:
    POINTS = [(1e6, 2e5), (4e6, 1e5), (2e6, 8e5), (8e6, 4e5), (5e5, 6e5)]

    def test_recovers_planted_coefficients(self):
        rows = planted_rows(2e-8, 5e-9, 0.1, self.POINTS)
        inv_net, inv_com, overhead, residual = fit_throughput(rows)
        assert inv_net == pytest.approx(2e-8, rel=1e-6)
        assert inv_com == pytest.approx(5e-9, rel=1e-6)
        assert overhead == pytest.approx(0.1, rel=1e-6)
        assert residual == pytest.approx(0.0, abs=1e-9)

    def test_outlier_rejected_by_mad_pass(self):
        rows = planted_rows(2e-8, 5e-9, 0.1, self.POINTS * 2)
        rows.append(obs(1e6, 2e5, 50.0))  # one straggler iteration
        inv_net, inv_com, overhead, residual = fit_throughput(rows)
        assert inv_net == pytest.approx(2e-8, rel=1e-3)
        assert inv_com == pytest.approx(5e-9, rel=1e-3)
        assert overhead == pytest.approx(0.1, rel=1e-3)
        # the residual is honest: reported over the full window, so the
        # rejected outlier still contributes its ~100% relative miss
        assert residual > 0.05

    def test_negative_rates_clamp_to_zero(self):
        # seconds *fall* as bytes rise: a negative inv_net would fit better
        rows = [obs(1e6, 0.0, 3.0), obs(2e6, 0.0, 2.0), obs(3e6, 0.0, 1.0)]
        inv_net, inv_com, overhead, _ = fit_throughput(rows)
        assert inv_net >= 0.0
        assert inv_com >= 0.0
        assert overhead >= 0.0

    def test_unusable_rows_are_skipped(self):
        rows = [obs(1e6, 1e5, 0.0), obs(math.inf, 1e5, 1.0)]
        assert fit_throughput(rows) == (0.0, 0.0, 0.0, 0.0)

    def test_degenerate_window_interpolates_its_point(self):
        rows = planted_rows(2e-8, 5e-9, 0.0, [(1e6, 2e5)] * 3)
        inv_net, inv_com, overhead, _ = fit_throughput(rows)
        fit = KernelCalibration(
            kind="cfo", bucket="mid", inv_net_rate=inv_net,
            inv_com_rate=inv_com, overhead_seconds=overhead, samples=3,
        )
        assert fit.predict_seconds(1e6, 2e5) == pytest.approx(
            rows[0].measured_seconds, rel=1e-6
        )


class TestKernelCalibration:
    def test_effective_bandwidths_are_reciprocals(self):
        fit = KernelCalibration(
            kind="cfo", bucket="dense", inv_net_rate=2e-8, inv_com_rate=0.0,
            overhead_seconds=0.1, samples=5,
        )
        assert fit.effective_network_bandwidth() == pytest.approx(5e7)
        assert fit.effective_compute_bandwidth() == math.inf


class TestCalibrationStore:
    def test_observe_rejects_unusable_rows(self):
        store = CalibrationStore()
        assert not store.observe(
            "cfo", "mid", net_bytes=1.0, flops=1.0, measured_seconds=0.0
        )
        assert not store.observe(
            "cfo", "mid", net_bytes=1.0, flops=1.0,
            measured_seconds=math.nan,
        )
        assert not store.observe(
            "cfo", "mid", net_bytes=math.inf, flops=1.0,
            measured_seconds=1.0,
        )
        assert store.num_observations == 0
        assert store.commit() == 0  # nothing pending, generation untouched

    def test_min_samples_gates_the_fit(self):
        store = CalibrationStore(min_samples=3)
        for _ in range(2):
            store.observe("cfo", "mid", net_bytes=1e6, flops=2e5,
                          measured_seconds=0.5)
        assert store.coefficients("cfo", "mid") is None
        store.observe("cfo", "mid", net_bytes=1e6, flops=2e5,
                      measured_seconds=0.5)
        fit = store.coefficients("cfo", "mid")
        assert fit is not None
        assert fit.samples == 3
        assert fit.predict_seconds(1e6, 2e5) == pytest.approx(0.5, rel=1e-6)

    def test_pooled_fallback_spans_buckets(self):
        store = CalibrationStore(min_samples=3)
        store.observe("cfo", "dense", net_bytes=1e6, flops=2e5,
                      measured_seconds=0.5)
        store.observe("cfo", "sparse", net_bytes=2e6, flops=1e5,
                      measured_seconds=0.8)
        store.observe("cfo", "sparse", net_bytes=4e6, flops=3e5,
                      measured_seconds=1.4)
        fit = store.coefficients("cfo", "mid")
        assert fit is not None
        assert fit.bucket == ANY_BUCKET
        assert store.coefficients("cell", "mid") is None  # other kind: no fit

    def test_generation_advances_per_committed_batch(self):
        store = CalibrationStore()
        assert store.generation == 0
        store.observe("cfo", "mid", net_bytes=1e6, flops=2e5,
                      measured_seconds=0.5)
        assert store.generation == 0  # observe alone never bumps
        assert store.commit() == 1
        assert store.commit() == 1  # empty batch: no bump
        store.observe("cfo", "mid", net_bytes=1e6, flops=2e5,
                      measured_seconds=0.5)
        assert store.commit() == 2

    def test_window_bounds_history(self):
        store = CalibrationStore(window=4, min_samples=2)
        for i in range(10):
            store.observe("cfo", "mid", net_bytes=1e6 + i, flops=2e5,
                          measured_seconds=0.5)
        assert store.num_observations == 4

    def test_mean_abs_error_tracks_planner_predictions(self):
        store = CalibrationStore()
        assert store.mean_abs_error() is None
        store.observe("cfo", "mid", net_bytes=1e6, flops=2e5,
                      measured_seconds=1.0, predicted_seconds=0.5)
        store.observe("cfo", "mid", net_bytes=1e6, flops=2e5,
                      measured_seconds=2.0)  # no prediction: not counted
        assert store.mean_abs_error() == pytest.approx(0.5)

    def test_json_round_trip(self, tmp_path):
        store = CalibrationStore(window=16, min_samples=2)
        for n, f in [(1e6, 2e5), (3e6, 4e5), (2e6, 1e5)]:
            store.observe("cfo", "mid", net_bytes=n, flops=f,
                          measured_seconds=n * 2e-8 + f * 5e-9 + 0.1,
                          predicted_seconds=math.inf,  # must not break JSON
                          measured_net_bytes=n * 0.9, measured_flops=f * 1.1)
        store.commit()
        path = tmp_path / "calibration.json"
        store.save(str(path))
        loaded = CalibrationStore.load(str(path))
        assert loaded.window == 16
        assert loaded.min_samples == 2
        assert loaded.generation == store.generation
        assert loaded.num_observations == store.num_observations
        original = store.coefficients("cfo", "mid")
        restored = loaded.coefficients("cfo", "mid")
        assert restored.inv_net_rate == pytest.approx(original.inv_net_rate)
        assert restored.inv_com_rate == pytest.approx(original.inv_com_rate)
        assert restored.overhead_seconds == pytest.approx(
            original.overhead_seconds
        )
        # the non-finite prediction was dropped on write, not serialized
        assert loaded.mean_abs_error() is None

    def test_merge_composes_stores(self):
        a = CalibrationStore(min_samples=2)
        b = CalibrationStore(min_samples=2)
        a.observe("cfo", "mid", net_bytes=1e6, flops=2e5,
                  measured_seconds=0.5)
        b.observe("cfo", "mid", net_bytes=2e6, flops=1e5,
                  measured_seconds=0.9)
        a.merge(b)
        assert a.num_observations == 2
        assert a.coefficients("cfo", "mid") is not None

    def test_stats_shape(self):
        store = CalibrationStore(min_samples=2)
        for _ in range(2):
            store.observe("cfo", "mid", net_bytes=1e6, flops=2e5,
                          measured_seconds=0.5, predicted_seconds=0.25)
        store.commit()
        stats = store.stats()
        assert stats["generation"] == 1
        assert stats["observations"] == 2
        assert stats["mean_abs_seconds_error"] == pytest.approx(0.5)
        kernel = stats["kernels"]["cfo/mid"]
        assert kernel["samples"] == 2
        assert "inv_net_rate" in kernel

    def test_thread_safety_under_concurrent_observe_and_fit(self):
        store = CalibrationStore(window=64, min_samples=3)
        errors = []

        def worker(seed):
            rng = np.random.default_rng(seed)
            try:
                for _ in range(50):
                    store.observe(
                        "cfo", "mid",
                        net_bytes=float(rng.uniform(1e5, 1e7)),
                        flops=float(rng.uniform(1e4, 1e6)),
                        measured_seconds=float(rng.uniform(0.01, 1.0)),
                    )
                    store.coefficients("cfo", "mid")
                    store.stats()
                store.commit()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(seed,)) for seed in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert store.num_observations == 64  # window-capped
        assert store.generation >= 1


class TestConfigValidation:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            make_config(calibration="sometimes")

    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            make_config(calibration_window=0)
        with pytest.raises(ValueError):
            make_config(calibration_min_samples=1)
        with pytest.raises(ValueError):
            make_config(calibration_replan_threshold=0.0)

    def test_default_is_off(self):
        assert EngineConfig().calibration == "off"


class TestPlanCacheInvalidation:
    def entry(self):
        return PlanCacheEntry(dag=object(), fusion_plan=object(),
                              fit_generation=3)

    def test_peek_leaves_stats_untouched(self):
        cache = PlanCache(capacity=4)
        cache.put("k", self.entry())
        assert cache.peek("k") is not None
        assert cache.peek("missing") is None
        stats = cache.stats()
        assert stats["hits"] == 0 and stats["misses"] == 0

    def test_invalidate_evicts_and_counts(self):
        cache = PlanCache(capacity=4)
        cache.put("k", self.entry())
        assert cache.invalidate("k")
        assert not cache.invalidate("k")  # already gone
        assert cache.peek("k") is None
        assert cache.stats()["invalidations"] == 1

    def test_clear_resets_invalidations(self):
        cache = PlanCache(capacity=4)
        cache.put("k", self.entry())
        cache.invalidate("k")
        cache.clear()
        assert cache.stats()["invalidations"] == 0
