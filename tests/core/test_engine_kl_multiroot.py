"""Cross-cutting engine tests: three-root queries, repeated execution, and
plan stability across runs (determinism)."""

import numpy as np
import pytest

from repro import FuseMEEngine
from repro.lang import log, matrix_input, sum_of
from repro.matrix import rand_dense, rand_sparse

from tests.conftest import make_config

BS = 25


@pytest.fixture
def data():
    return {
        "X": rand_sparse(150, 100, 0.1, BS, seed=1, low=0.5, high=2.0),
        "W": rand_dense(150, 50, BS, seed=2, low=0.1, high=1.0),
        "H": rand_dense(50, 100, BS, seed=3, low=0.1, high=1.0),
    }


def three_roots():
    x = matrix_input("X", 150, 100, BS, density=0.1)
    w = matrix_input("W", 150, 50, BS)
    h = matrix_input("H", 50, 100, BS)
    return [
        sum_of(x * log((x + 1e-12) / (w @ h + 1e-12))),
        sum_of(x),
        sum_of(w @ h),
    ]


class TestThreeRootQuery:
    def test_all_roots_materialized(self, data):
        result = FuseMEEngine(make_config()).execute(three_roots(), data)
        assert len(result.outputs) == 3
        for root in result.dag.roots:
            assert result.outputs[root].shape == (1, 1)

    def test_values(self, data):
        result = FuseMEEngine(make_config()).execute(three_roots(), data)
        x = data["X"].to_numpy()
        wh = data["W"].to_numpy() @ data["H"].to_numpy()
        roots = list(result.dag.roots)
        expected = [
            np.sum(x * np.log((x + 1e-12) / (wh + 1e-12))),
            x.sum(),
            wh.sum(),
        ]
        for root, value in zip(roots, expected):
            assert result.outputs[root].to_numpy()[0, 0] == pytest.approx(value)


class TestDeterminism:
    def test_same_plan_same_metrics_across_runs(self, data):
        engine = FuseMEEngine(make_config())
        first = engine.execute(three_roots(), data)
        second = engine.execute(three_roots(), data)
        assert len(first.fusion_plan.units) == len(second.fusion_plan.units)
        assert first.comm_bytes == second.comm_bytes
        assert first.metrics.flops == second.metrics.flops
        assert first.elapsed_seconds == pytest.approx(second.elapsed_seconds)

    def test_results_bit_identical(self, data):
        engine = FuseMEEngine(make_config())
        a = engine.execute(three_roots(), data)
        b = engine.execute(three_roots(), data)
        for ra, rb in zip(a.dag.roots, b.dag.roots):
            assert np.array_equal(
                a.outputs[ra].to_numpy(), b.outputs[rb].to_numpy()
            )
