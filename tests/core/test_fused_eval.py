"""Tests for the fused slice evaluator (including the masked SDDMM path)."""

import numpy as np
import pytest

from repro.blocks import Block
from repro.core.fused_eval import (
    SliceEnv,
    evaluate_masked_slice,
    evaluate_slice,
    finish_masked,
    mask_positions,
    masked_product,
)
from repro.core.plan import PartialFusionPlan
from repro.core.spaces import find_sparsity_mask, plan_layout
from repro.errors import ExecutionError
from repro.lang import DAG, evaluate, log, matrix_input, nnz_mask, sq, sum_of

BS = 25


def nmf_setting(density=0.05, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(size=(50, 75)) * (rng.uniform(size=(50, 75)) < density)
    u = rng.uniform(size=(50, 25))
    v = rng.uniform(size=(75, 25))
    xe = matrix_input("X", 50, 75, BS, density=density)
    ue = matrix_input("U", 50, 25, BS)
    ve = matrix_input("V", 75, 25, BS)
    expr = xe * log(ue @ ve.T + 1e-8)
    dag = DAG(expr.node)
    plan = PartialFusionPlan(set(dag.operators()), dag)
    layout = plan_layout(plan)
    env = SliceEnv(frontier=_bind_all(plan, {"X": x, "U": u, "V": v}))
    return plan, layout, env, {"X": x, "U": u, "V": v}


def _bind_all(plan, values):
    frontier = {}
    for node in plan.topo_nodes():
        for idx, child in enumerate(node.inputs):
            if child not in plan.nodes:
                frontier[(node, idx)] = Block(values[child.name])
    return frontier


class TestEvaluateSlice:
    def test_full_plan_matches_interpreter(self):
        plan, layout, env, values = nmf_setting()
        out = evaluate_slice(plan, env)
        expected = evaluate(plan.root, values)
        np.testing.assert_allclose(out.to_numpy(), expected, atol=1e-10)

    def test_flops_accumulate(self):
        plan, layout, env, values = nmf_setting()
        evaluate_slice(plan, env)
        assert env.flops > 0

    def test_partial_root(self):
        plan, layout, env, values = nmf_setting()
        out = evaluate_slice(plan, env, root=layout.mm)
        np.testing.assert_allclose(
            out.to_numpy(), values["U"] @ values["V"].T, atol=1e-10
        )

    def test_bound_node_short_circuits(self):
        plan, layout, env, values = nmf_setting()
        fake = Block(np.ones((50, 75)))
        env.bind_node(layout.mm, fake)
        out = evaluate_slice(plan, env)
        expected = values["X"] * np.log(np.ones((50, 75)) + 1e-8)
        np.testing.assert_allclose(out.to_numpy(), expected, atol=1e-10)

    def test_missing_edge_raises(self):
        plan, layout, env, values = nmf_setting()
        env.frontier.clear()
        with pytest.raises(ExecutionError):
            evaluate_slice(plan, env)


class TestMaskedPath:
    def test_masked_matches_dense_path(self):
        plan, layout, env, values = nmf_setting(density=0.1)
        mask = find_sparsity_mask(plan, layout.mm, layout.tree)
        assert mask is not None
        dense_out = evaluate_slice(plan, SliceEnv(frontier=dict(env.frontier)))
        masked_out = evaluate_masked_slice(
            plan, env, layout.mm, mask, (50, 75)
        )
        np.testing.assert_allclose(
            masked_out.to_numpy(), dense_out.to_numpy(), atol=1e-10
        )
        assert masked_out.is_sparse

    def test_masked_uses_fewer_flops(self):
        plan, layout, env, values = nmf_setting(density=0.05)
        mask = find_sparsity_mask(plan, layout.mm, layout.tree)
        dense_env = SliceEnv(frontier=dict(env.frontier))
        evaluate_slice(plan, dense_env)
        evaluate_masked_slice(plan, env, layout.mm, mask, (50, 75))
        assert env.flops < dense_env.flops / 2

    def test_mask_positions_match_pattern(self):
        plan, layout, env, values = nmf_setting(density=0.05)
        mask = find_sparsity_mask(plan, layout.mm, layout.tree)
        rows, cols = mask_positions(plan, env, mask)
        expected = np.count_nonzero(values["X"])
        assert rows.size == expected

    def test_empty_mask_yields_empty_tile(self):
        plan, layout, env, values = nmf_setting(density=0.05)
        zero = np.zeros_like(values["X"])
        env = SliceEnv(frontier=_bind_all(plan, {**values, "X": zero}))
        mask = find_sparsity_mask(plan, layout.mm, layout.tree)
        out = evaluate_masked_slice(plan, env, layout.mm, mask, (50, 75))
        assert out.nnz == 0

    def test_two_phase_masked_aggregation(self):
        """masked_product partials summed over k then finished == one shot."""
        plan, layout, env, values = nmf_setting(density=0.1)
        mask = find_sparsity_mask(plan, layout.mm, layout.tree)
        rows, cols = mask_positions(plan, env, mask)

        # split U/V along k into two halves and sum the masked partials
        u, v = values["U"], values["V"]
        total = None
        for lo, hi in ((0, 12), (12, 25)):
            half = SliceEnv(frontier=_bind_all(
                plan, {**values, "U": u[:, lo:hi], "V": v[:, lo:hi]}
            ))
            part = masked_product(plan, half, layout.mm, rows, cols)
            total = part if total is None else Block(
                (total.data + part.data).tocsr()
            )
        out = finish_masked(plan, env, layout.mm, mask, total, (50, 75))
        one_shot = evaluate_masked_slice(
            plan, SliceEnv(frontier=dict(env.frontier)), layout.mm, mask, (50, 75)
        )
        np.testing.assert_allclose(
            out.to_numpy(), one_shot.to_numpy(), atol=1e-10
        )

    def test_masked_aggregation_root(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(size=(50, 75)) * (rng.uniform(size=(50, 75)) < 0.1)
        u = rng.uniform(size=(50, 25))
        v = rng.uniform(size=(25, 75))
        xe = matrix_input("X", 50, 75, BS, density=0.1)
        ue = matrix_input("U", 50, 25, BS)
        ve = matrix_input("V", 25, 75, BS)
        expr = sum_of(nnz_mask(xe) * sq(xe - ue @ ve))
        dag = DAG(expr.node)
        plan = PartialFusionPlan(set(dag.operators()), dag)
        layout = plan_layout(plan)
        mask = find_sparsity_mask(plan, layout.mm, layout.tree)
        assert mask is not None
        env = SliceEnv(frontier=_bind_all(plan, {"X": x, "U": u, "V": v}))
        out = evaluate_masked_slice(plan, env, layout.mm, mask, (50, 75))
        expected = np.sum((x != 0) * (x - u @ v) ** 2)
        assert out.to_numpy()[0, 0] == pytest.approx(expected)
