"""Property-based tests on the (P*, Q*, R*) optimizer.

Across random instances and budgets the pruned search must agree with the
exhaustive search (it may only prune dominated candidates), and every
returned choice must respect the memory budget and the parallelism floor.
"""

from hypothesis import given, settings, strategies as st

from repro.core.cost import CostModel
from repro.core.optimizer import optimize_parameters
from repro.core.plan import PartialFusionPlan
from repro.core.spaces import plan_layout
from repro.lang import DAG, log, matrix_input

from tests.conftest import make_config

BS = 25


def build_plan(i_blocks, j_blocks, k_blocks, density):
    rows, cols, common = i_blocks * BS, j_blocks * BS, k_blocks * BS
    x = matrix_input("X", rows, cols, BS, density=density)
    u = matrix_input("U", rows, common, BS)
    v = matrix_input("V", cols, common, BS)
    dag = DAG((x * log(u @ v.T + 1e-8)).node)
    return PartialFusionPlan(set(dag.operators()), dag)


@settings(max_examples=25, deadline=None)
@given(
    st.integers(2, 14), st.integers(2, 12), st.integers(1, 6),
    st.sampled_from([0.01, 0.1, 0.5, 1.0]),
    st.sampled_from([256 * 1024, 2 * 1024 * 1024, 64 * 1024 * 1024]),
)
def test_pruned_never_worse_than_exhaustive(i_b, j_b, k_b, density, budget):
    plan = build_plan(i_b, j_b, k_b, density)
    config = make_config(task_memory_budget=budget)
    pruned = optimize_parameters(plan, config, method="pruned")
    exhaustive = optimize_parameters(plan, config, method="exhaustive")
    assert pruned.feasible == exhaustive.feasible
    if pruned.feasible:
        assert pruned.cost.cost_seconds <= exhaustive.cost.cost_seconds * 1.0001


@settings(max_examples=25, deadline=None)
@given(
    st.integers(2, 14), st.integers(2, 12), st.integers(1, 6),
    st.sampled_from([0.01, 0.3, 1.0]),
)
def test_choice_respects_budget_and_floor(i_b, j_b, k_b, density):
    plan = build_plan(i_b, j_b, k_b, density)
    config = make_config(task_memory_budget=2 * 1024 * 1024)
    result = optimize_parameters(plan, config)
    p, q, r = result.pqr
    assert 1 <= p <= i_b and 1 <= q <= j_b and 1 <= r <= k_b
    if result.feasible:
        layout = plan_layout(plan)
        model = CostModel(config)
        assert (
            model.mem_est(plan, layout.tree, result.pqr)
            <= config.cluster.task_memory_budget
        )
        voxels = i_b * j_b * k_b
        floor = min(config.cluster.total_tasks, voxels)
        assert p * q * r >= floor
