"""End-to-end tests for the FuseME engine."""

import numpy as np
import pytest

from repro import FuseMEEngine
from repro.errors import PlanError
from repro.lang import DAG, evaluate, log, matrix_input, nnz_mask, sq, sum_of
from repro.matrix import rand_dense, rand_sparse

from tests.conftest import make_config

BS = 25


@pytest.fixture
def nmf():
    x = rand_sparse(200, 150, 0.05, BS, seed=1)
    u = rand_dense(200, 50, BS, seed=2)
    v = rand_dense(150, 50, BS, seed=3)
    xe = matrix_input("X", 200, 150, BS, density=0.05)
    ue = matrix_input("U", 200, 50, BS)
    ve = matrix_input("V", 150, 50, BS)
    return (xe, ue, ve), {"X": x, "U": u, "V": v}


class TestExecute:
    def test_nmf_query(self, nmf):
        (xe, ue, ve), inputs = nmf
        expr = xe * log(ue @ ve.T + 1e-8)
        engine = FuseMEEngine(make_config())
        result = engine.execute(expr, inputs)
        expected = evaluate(
            DAG(expr.node).roots[0],
            {k: m.to_numpy() for k, m in inputs.items()},
        )
        np.testing.assert_allclose(result.output().to_numpy(), expected, atol=1e-8)

    def test_single_fused_unit_for_simple_query(self, nmf):
        (xe, ue, ve), inputs = nmf
        expr = xe * log(ue @ ve.T + 1e-8)
        result = FuseMEEngine(make_config()).execute(expr, inputs)
        assert len(result.fusion_plan.units) == 1
        assert result.fusion_plan.units[0].is_fused

    def test_multi_root_query(self, nmf):
        (xe, ue, ve), inputs = nmf
        product = ue @ ve.T
        loss = sum_of(nnz_mask(xe) * sq(xe - product))
        scaled = xe * 2.0
        result = FuseMEEngine(make_config()).execute([loss, scaled], inputs)
        assert len(result.outputs) == 2
        dense = {k: m.to_numpy() for k, m in inputs.items()}
        roots = list(result.dag.roots)
        np.testing.assert_allclose(
            result.outputs[roots[0]].to_numpy(),
            evaluate(loss.node, dense).reshape(1, 1),
            rtol=1e-9,
        )
        np.testing.assert_allclose(
            result.outputs[roots[1]].to_numpy(), dense["X"] * 2.0
        )

    def test_missing_input_rejected(self, nmf):
        (xe, ue, ve), inputs = nmf
        expr = xe * log(ue @ ve.T + 1e-8)
        del inputs["V"]
        with pytest.raises(PlanError, match="missing input"):
            FuseMEEngine(make_config()).execute(expr, inputs)

    def test_shape_mismatch_rejected(self, nmf):
        (xe, ue, ve), inputs = nmf
        expr = xe * log(ue @ ve.T + 1e-8)
        inputs["U"] = rand_dense(200, 40, BS, seed=9)
        with pytest.raises(PlanError, match="shape"):
            FuseMEEngine(make_config()).execute(expr, inputs)

    def test_block_size_mismatch_rejected(self, nmf):
        (xe, ue, ve), inputs = nmf
        expr = xe * log(ue @ ve.T + 1e-8)
        inputs["U"] = rand_dense(200, 50, 50, seed=9)
        with pytest.raises(PlanError, match="block size"):
            FuseMEEngine(make_config()).execute(expr, inputs)

    def test_simplification_applied(self, nmf):
        (xe, ue, ve), inputs = nmf
        expr = (xe.T.T * 2.0) * 3.0
        result = FuseMEEngine(make_config()).execute(expr, inputs)
        np.testing.assert_allclose(
            result.output().to_numpy(), inputs["X"].to_numpy() * 6.0
        )
        labels = [n.label() for n in result.dag.nodes()]
        assert "r(T)" not in labels

    def test_metrics_populated(self, nmf):
        (xe, ue, ve), inputs = nmf
        expr = xe * log(ue @ ve.T + 1e-8)
        result = FuseMEEngine(make_config()).execute(expr, inputs)
        assert result.comm_bytes > 0
        assert result.elapsed_seconds > 0
        assert result.metrics.flops > 0

    def test_exploitation_report_available(self, nmf):
        (xe, ue, ve), inputs = nmf
        engine = FuseMEEngine(make_config())
        engine.execute(xe * log(ue @ ve.T + 1e-8), inputs)
        assert engine.last_report is not None

    def test_input_as_root(self, nmf):
        """A root that is itself an input simply passes through."""
        (xe, ue, ve), inputs = nmf
        result = FuseMEEngine(make_config()).execute([xe * 1.0, xe], inputs)
        roots = list(result.dag.roots)
        assert result.outputs[roots[1]] is inputs["X"]
