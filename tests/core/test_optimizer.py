"""Tests for the (P*, Q*, R*) optimizer: pruned vs exhaustive agreement."""

import pytest

from repro.core.optimizer import optimize_parameters
from repro.core.plan import PartialFusionPlan
from repro.lang import DAG, log, matrix_input

from tests.conftest import make_config


def nmf_plan(i_blocks=8, j_blocks=6, k_blocks=2, bs=25, density=0.05):
    rows, cols, common = i_blocks * bs, j_blocks * bs, k_blocks * bs
    x = matrix_input("X", rows, cols, bs, density=density)
    u = matrix_input("U", rows, common, bs)
    v = matrix_input("V", cols, common, bs)
    dag = DAG((x * log(u @ v.T + 1e-8)).node)
    return PartialFusionPlan(set(dag.operators()), dag)


class TestSearch:
    def test_pruned_matches_exhaustive_cost(self):
        plan = nmf_plan()
        config = make_config()
        pruned = optimize_parameters(plan, config, method="pruned")
        exhaustive = optimize_parameters(plan, config, method="exhaustive")
        assert pruned.feasible and exhaustive.feasible
        assert pruned.cost.cost_seconds <= exhaustive.cost.cost_seconds * 1.001

    def test_pruned_evaluates_far_fewer_candidates(self):
        plan = nmf_plan(i_blocks=12, j_blocks=12, k_blocks=6)
        config = make_config()
        pruned = optimize_parameters(plan, config, method="pruned")
        exhaustive = optimize_parameters(plan, config, method="exhaustive")
        assert pruned.evaluations < exhaustive.evaluations / 5

    def test_result_within_bounds(self):
        plan = nmf_plan()
        result = optimize_parameters(plan, make_config())
        p, q, r = result.pqr
        assert 1 <= p <= 8 and 1 <= q <= 6 and 1 <= r <= 2

    def test_parallelism_constraint_respected(self):
        """P*Q*R >= N*Tc whenever the space allows it."""
        plan = nmf_plan(i_blocks=8, j_blocks=6, k_blocks=4)
        config = make_config(num_nodes=2, tasks_per_node=4)
        result = optimize_parameters(plan, config, method="pruned")
        p, q, r = result.pqr
        assert p * q * r >= 8

    def test_small_space_uses_maximal_parameters(self):
        """I*J*K < T: the paper sets parameters as large as possible."""
        plan = nmf_plan(i_blocks=2, j_blocks=1, k_blocks=1)
        config = make_config(num_nodes=8, tasks_per_node=12)
        result = optimize_parameters(plan, config, method="pruned")
        assert result.pqr == (2, 1, 1)

    def test_infeasible_plan_reports_infinite_cost(self):
        plan = nmf_plan()
        config = make_config(task_memory_budget=8)
        result = optimize_parameters(plan, config)
        assert not result.feasible
        assert result.cost.cost_seconds == float("inf")
        assert result.pqr == (8, 6, 2)  # maximal partitioning

    def test_unknown_method_rejected(self):
        from repro.errors import OptimizerError

        with pytest.raises(OptimizerError):
            optimize_parameters(nmf_plan(), make_config(), method="magic")


class TestMemoryPressure:
    def test_tighter_budget_forces_finer_partitioning(self):
        plan = nmf_plan(i_blocks=8, j_blocks=8, k_blocks=4, density=1.0)
        roomy = optimize_parameters(plan, make_config()).pqr
        # budget sized so only fine partitionings fit
        tight_config = make_config(task_memory_budget=300_000)
        tight = optimize_parameters(plan, tight_config).pqr
        assert tight[0] * tight[1] * tight[2] >= roomy[0] * roomy[1] * roomy[2]

    def test_dense_output_accounted(self):
        """A dense 8x8-block output must fit per task: X + O dominate at
        640 KB, so with a 100 KB budget P*Q must reach at least 7."""
        from repro.core.cost import CostModel

        plan = nmf_plan(i_blocks=8, j_blocks=8, k_blocks=1, density=1.0)
        config = make_config(task_memory_budget=100_000)
        result = optimize_parameters(plan, config)
        assert result.feasible
        p, q, r = result.pqr
        assert p * q >= 7
        model = CostModel(config)
        from repro.core.spaces import plan_layout

        tree = plan_layout(plan).tree
        assert model.mem_est(plan, tree, result.pqr) <= 100_000
