"""Regression tests: the sparsity mask must never change results.

Found by the property suite: an operator above the masking multiplication
that maps 0 to non-zero (``+ eps``, a subtraction, a densifying unary) makes
the never-computed cells observable — the mask must be declined there.
"""

import numpy as np
import pytest

from repro import FuseMEEngine
from repro.core.plan import PartialFusionPlan
from repro.core.spaces import find_sparsity_mask, plan_layout
from repro.lang import DAG, evaluate, exp, log, matrix_input, sq, sum_of
from repro.matrix import rand_dense, rand_sparse

from tests.conftest import make_config

BS = 25
M, N, K = 100, 75, 50


@pytest.fixture
def data():
    return {
        "X": rand_sparse(M, N, 0.1, BS, seed=11),
        "U": rand_dense(M, K, BS, seed=12),
        "V": rand_dense(N, K, BS, seed=13),
    }


def leaves():
    return (
        matrix_input("X", M, N, BS, density=0.1),
        matrix_input("U", M, K, BS),
        matrix_input("V", N, K, BS),
    )


def mask_of(expr):
    dag = DAG(expr.node)
    plan = PartialFusionPlan(set(dag.operators()), dag)
    layout = plan_layout(plan)
    return find_sparsity_mask(plan, layout.mm, layout.tree)


def check_engine(expr, data):
    result = FuseMEEngine(make_config()).execute(expr, data)
    expected = evaluate(
        DAG(expr.node).roots[0], {k: m.to_numpy() for k, m in data.items()}
    )
    np.testing.assert_allclose(
        result.output().to_numpy(), np.atleast_2d(expected), atol=1e-7
    )


class TestMaskDeclined:
    def test_scalar_add_above_mask(self, data):
        x, u, v = leaves()
        expr = (x * (u @ v.T)) + 0.5
        assert mask_of(expr) is None
        check_engine(expr, data)

    def test_densifying_unary_above_mask(self, data):
        x, u, v = leaves()
        expr = exp(x * (u @ v.T))
        assert mask_of(expr) is None
        check_engine(expr, data)

    def test_matrix_sub_above_mask(self, data):
        x, u, v = leaves()
        expr = (x * (u @ v.T)) - x
        assert mask_of(expr) is None
        check_engine(expr, data)

    def test_scalar_div_from_left_above_mask(self, data):
        x, u, v = leaves()
        expr = 1.0 / ((x * (u @ v.T)) + 1.0)
        assert mask_of(expr) is None
        check_engine(expr, data)


class TestMaskAccepted:
    def test_mask_at_root(self, data):
        x, u, v = leaves()
        expr = x * log(u @ v.T + 1e-8)
        assert mask_of(expr) is not None
        check_engine(expr, data)

    def test_scalar_mul_above_mask(self, data):
        x, u, v = leaves()
        expr = (x * (u @ v.T)) * 2.0
        assert mask_of(expr) is not None
        check_engine(expr, data)

    def test_zero_preserving_unary_above_mask(self, data):
        x, u, v = leaves()
        expr = sq(x * (u @ v.T))
        assert mask_of(expr) is not None
        check_engine(expr, data)

    def test_aggregation_above_mask(self, data):
        x, u, v = leaves()
        expr = sum_of(x * sq(x - u @ v.T))
        assert mask_of(expr) is not None
        check_engine(expr, data)

    def test_scalar_div_from_right_above_mask(self, data):
        x, u, v = leaves()
        expr = (x * (u @ v.T)) / 3.0
        assert mask_of(expr) is not None
        check_engine(expr, data)
