"""Unit tests for partial fusion plans and fusion plans."""

import pytest

from repro.core.plan import FusionPlan, PartialFusionPlan, PlanUnit
from repro.errors import PlanError
from repro.lang import DAG, log, matrix_input


def nmf_dag():
    x = matrix_input("X", 100, 75, 25, density=0.1)
    u = matrix_input("U", 100, 50, 25)
    v = matrix_input("V", 75, 50, 25)
    expr = x * log(u @ v.T + 1e-8)
    return DAG(expr.node)


class TestPartialFusionPlan:
    def test_root_detection(self):
        dag = nmf_dag()
        plan = PartialFusionPlan(set(dag.operators()), dag)
        assert plan.root.label() == "b(mul)"

    def test_empty_rejected(self):
        dag = nmf_dag()
        with pytest.raises(PlanError):
            PartialFusionPlan(set(), dag)

    def test_input_nodes_rejected(self):
        dag = nmf_dag()
        with pytest.raises(PlanError):
            PartialFusionPlan(set(dag.nodes()), dag)

    def test_multiple_roots_rejected(self):
        dag = nmf_dag()
        ops = list(dag.operators())
        # transpose and the top mul are disconnected without the middle ops
        disconnected = {ops[0], ops[-1]}
        with pytest.raises(PlanError):
            PartialFusionPlan(disconnected, dag)

    def test_frontier_are_inputs(self):
        dag = nmf_dag()
        plan = PartialFusionPlan(set(dag.operators()), dag)
        names = sorted(n.name for n in plan.frontier())
        assert names == ["U", "V", "X"]

    def test_frontier_of_sub_plan_includes_cut_edge(self):
        dag = nmf_dag()
        mm = dag.matmul_nodes()[0]
        top = [n for n in dag.operators() if n.label() == "b(mul)"][0]
        plan = PartialFusionPlan({top}, dag)
        frontier = plan.frontier()
        assert len(frontier) == 2  # X and the log-chain output

    def test_topo_nodes_order(self):
        dag = nmf_dag()
        plan = PartialFusionPlan(set(dag.operators()), dag)
        nodes = plan.topo_nodes()
        pos = {n: i for i, n in enumerate(nodes)}
        for node in nodes:
            for child in node.inputs:
                if child in plan.nodes:
                    assert pos[child] < pos[node]

    def test_main_matmul(self):
        dag = nmf_dag()
        plan = PartialFusionPlan(set(dag.operators()), dag)
        assert plan.main_matmul() is dag.matmul_nodes()[0]

    def test_main_matmul_requires_matmul(self):
        dag = nmf_dag()
        top = [n for n in dag.operators() if n.label() == "b(mul)"][0]
        plan = PartialFusionPlan({top}, dag)
        with pytest.raises(PlanError):
            plan.main_matmul()

    def test_split(self):
        dag = nmf_dag()
        plan = PartialFusionPlan(set(dag.operators()), dag)
        mm = plan.main_matmul()
        remainder, split_off = plan.split(mm)
        assert mm in split_off.nodes
        assert mm not in remainder.nodes
        assert split_off.root is mm
        assert len(remainder) + len(split_off) == len(plan)

    def test_split_at_root_rejected(self):
        dag = nmf_dag()
        plan = PartialFusionPlan(set(dag.operators()), dag)
        with pytest.raises(PlanError):
            plan.split(plan.root)

    def test_descendants_within(self):
        dag = nmf_dag()
        plan = PartialFusionPlan(set(dag.operators()), dag)
        descendants = plan.descendants_within(plan.root)
        assert descendants == plan.nodes


class TestFusionPlan:
    def test_all_operators_covered(self):
        dag = nmf_dag()
        unit = PlanUnit(plan=PartialFusionPlan(set(dag.operators()), dag))
        fp = FusionPlan(dag, [unit])
        assert len(fp) == 1

    def test_missing_operator_rejected(self):
        dag = nmf_dag()
        ops = list(dag.operators())
        partial = PartialFusionPlan(set(ops[:-1]), dag)
        with pytest.raises(PlanError, match="does not cover"):
            FusionPlan(dag, [PlanUnit(plan=partial)])

    def test_double_coverage_rejected(self):
        dag = nmf_dag()
        whole = PartialFusionPlan(set(dag.operators()), dag)
        with pytest.raises(PlanError, match="covered twice"):
            FusionPlan(dag, [PlanUnit(plan=whole), PlanUnit(plan=whole)])

    def test_dependency_order_enforced(self):
        dag = nmf_dag()
        mm = dag.matmul_nodes()[0]
        whole = PartialFusionPlan(set(dag.operators()), dag)
        remainder, split_off = whole.split(mm)
        with pytest.raises(PlanError, match="unproduced"):
            FusionPlan(dag, [PlanUnit(plan=remainder), PlanUnit(plan=split_off)])
        # correct order passes
        fp = FusionPlan(dag, [PlanUnit(plan=split_off), PlanUnit(plan=remainder)])
        assert fp.units[0].output is mm

    def test_is_fused_flag(self):
        dag = nmf_dag()
        whole = PartialFusionPlan(set(dag.operators()), dag)
        mm = dag.matmul_nodes()[0]
        remainder, split_off = whole.split(mm)
        single = PlanUnit(plan=PartialFusionPlan({mm}, dag))
        assert not single.is_fused
        assert PlanUnit(plan=remainder).is_fused

    def test_dump(self):
        dag = nmf_dag()
        fp = FusionPlan(
            dag, [PlanUnit(plan=PartialFusionPlan(set(dag.operators()), dag))]
        )
        assert "fused" in fp.dump()
