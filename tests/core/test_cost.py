"""Tests for the cost model (Algorithm 1, Eqs. 2-5) against Table 1.

For the running example ``O = X * log(U x V^T + eps)`` Table 1 gives closed
forms; the model must reproduce them exactly:

* Net(P, Q, R) = R*|X| + Q*|U| + P*|V|
* Mem(P, Q, R) per task = |U|/(P*R) + |V|/(Q*R) + |X|/(P*Q) + |O|/(P*Q)
* BFO == the (T, T, 1) corner, RFO == the (I, J, 1) corner (Figure 9).
"""

import pytest

from repro.core.cost import CostModel
from repro.core.plan import PartialFusionPlan
from repro.core.spaces import plan_layout
from repro.lang import DAG, log, matrix_input

from tests.conftest import make_config

BS = 25
I_BLOCKS, J_BLOCKS, K_BLOCKS = 8, 6, 2


@pytest.fixture
def setting():
    rows, cols, common = I_BLOCKS * BS, J_BLOCKS * BS, K_BLOCKS * BS
    x = matrix_input("X", rows, cols, BS, density=0.05)
    u = matrix_input("U", rows, common, BS)
    v = matrix_input("V", cols, common, BS)
    expr = x * log(u @ v.T + 1e-8)
    dag = DAG(expr.node)
    plan = PartialFusionPlan(set(dag.operators()), dag)
    layout = plan_layout(plan)
    config = make_config(block_size=BS)
    sizes = {
        "X": x.meta.estimated_bytes,
        "U": u.meta.estimated_bytes,
        "V": v.meta.estimated_bytes,
        "O": plan.root.meta.estimated_bytes,
    }
    return plan, layout, CostModel(config), sizes


class TestNetEst:
    @pytest.mark.parametrize("pqr", [(1, 1, 1), (2, 3, 2), (8, 6, 2), (4, 2, 1)])
    def test_matches_table1_formula(self, setting, pqr):
        plan, layout, model, sizes = setting
        p, q, r = pqr
        expected = r * sizes["X"] + q * sizes["U"] + p * sizes["V"]
        assert model.net_est(layout.tree, pqr) == pytest.approx(expected)

    def test_bfo_corner(self, setting):
        """BFO = (T, T, 1) in Figure 9: Net = |X| + T(|U| + |V|)."""
        plan, layout, model, sizes = setting
        t = 6  # pretend T tasks; stay within grid bounds
        expected = sizes["X"] + t * (sizes["U"] + sizes["V"])
        assert model.net_est(layout.tree, (t, t, 1)) == pytest.approx(expected)

    def test_rfo_corner(self, setting):
        """RFO = (I, J, 1): Net = |X| + J|U| + I|V|."""
        plan, layout, model, sizes = setting
        expected = (
            sizes["X"] + J_BLOCKS * sizes["U"] + I_BLOCKS * sizes["V"]
        )
        assert model.net_est(
            layout.tree, (I_BLOCKS, J_BLOCKS, 1)
        ) == pytest.approx(expected)

    def test_monotone_in_each_parameter(self, setting):
        plan, layout, model, _ = setting
        base = model.net_est(layout.tree, (2, 2, 1))
        assert model.net_est(layout.tree, (3, 2, 1)) >= base
        assert model.net_est(layout.tree, (2, 3, 1)) >= base
        assert model.net_est(layout.tree, (2, 2, 2)) >= base


class TestMemEst:
    @pytest.mark.parametrize("pqr", [(1, 1, 1), (2, 3, 2), (8, 6, 2)])
    def test_matches_eq3(self, setting, pqr):
        plan, layout, model, sizes = setting
        p, q, r = pqr
        expected = (
            sizes["U"] / (p * r)
            + sizes["V"] / (q * r)
            + sizes["X"] / (p * q)
            + sizes["O"] / (p * q)
        )
        assert model.mem_est(plan, layout.tree, pqr) == pytest.approx(expected)

    def test_monotone_decreasing(self, setting):
        plan, layout, model, _ = setting
        coarse = model.mem_est(plan, layout.tree, (1, 1, 1))
        fine = model.mem_est(plan, layout.tree, (8, 6, 2))
        assert fine < coarse


class TestComEst:
    def test_mm_counted_once(self, setting):
        """Doubling Q doubles L-space recomputation but not the matmul."""
        plan, layout, model, _ = setting
        mm_flops = layout.mm.estimated_flops()
        one = model.com_est(layout.tree, (1, 1, 1))
        doubled_q = model.com_est(layout.tree, (1, 2, 1))
        # difference comes only from replicated L-space work (none here: U is
        # a bare input with zero operator flops), so the mm term is constant
        assert one >= mm_flops
        assert doubled_q - one < mm_flops

    def test_transpose_recomputed_p_times(self, setting):
        """The transpose of V lives in R-space: computed P times (Table 1)."""
        plan, layout, model, _ = setting
        transpose = next(n for n in plan.nodes if n.label() == "r(T)")
        t_flops = transpose.estimated_flops()
        p1 = model.com_est(layout.tree, (1, 1, 1))
        p3 = model.com_est(layout.tree, (3, 1, 1))
        assert p3 - p1 == pytest.approx(2 * t_flops)


class TestCost:
    def test_infeasible_marks_infinite(self, setting):
        plan, layout, _, _ = setting
        tiny = make_config(block_size=BS, task_memory_budget=1)
        model = CostModel(tiny)
        cost = model.evaluate(plan, layout.tree, (1, 1, 1))
        assert not cost.feasible
        assert cost.cost_seconds == float("inf")

    def test_feasible_cost_positive(self, setting):
        plan, layout, model, _ = setting
        cost = model.evaluate(plan, layout.tree, (2, 2, 1))
        assert cost.feasible
        assert 0 < cost.cost_seconds < float("inf")

    def test_overlap_vs_sum(self, setting):
        plan, layout, _, _ = setting
        overlap = CostModel(make_config(block_size=BS))
        serial = CostModel(make_config(block_size=BS, overlap_comm_compute=False))
        c_overlap = overlap.evaluate(plan, layout.tree, (2, 2, 1))
        c_serial = serial.evaluate(plan, layout.tree, (2, 2, 1))
        assert c_serial.cost_seconds >= c_overlap.cost_seconds

    def test_cost_ordering(self, setting):
        plan, layout, model, _ = setting
        cheap = model.evaluate(plan, layout.tree, (2, 2, 1))
        pricey = model.evaluate(plan, layout.tree, (8, 6, 2))
        assert (cheap < pricey) == (cheap.cost_seconds < pricey.cost_seconds)
