"""Plan-cache behaviour: fingerprint canonicalization, hits, invalidation."""

import numpy as np

from repro import FuseMEEngine, matrix_input, sum_of
from repro.core.plan_cache import PlanCache, PlanCacheEntry, dag_fingerprint
from repro.lang import DAG, nnz_mask, sq
from repro.matrix import rand_dense, rand_sparse

from tests.conftest import make_config

BS = 25
M, N, K = 75, 50, 25


def _gnmf_like_dag(m=M, n=N, k=K, bs=BS, density=0.1, masked=False):
    x = matrix_input("X", m, n, bs, density=density)
    u = matrix_input("U", m, k, bs)
    v = matrix_input("V", k, n, bs)
    product = u @ v
    body = nnz_mask(x) * sq(x - product) if masked else sq(x - product)
    return DAG(sum_of(body).node)


def _inputs(m=M, n=N, k=K, bs=BS, density=0.1):
    return {
        "X": rand_sparse(m, n, density, bs, seed=1),
        "U": rand_dense(m, k, bs, seed=2),
        "V": rand_dense(k, n, bs, seed=3),
    }


# -- fingerprint canonicalization ---------------------------------------------


def test_fingerprint_deterministic_across_rebuilds():
    assert dag_fingerprint(_gnmf_like_dag()) == dag_fingerprint(_gnmf_like_dag())


def test_fingerprint_changes_with_shape():
    assert dag_fingerprint(_gnmf_like_dag()) != dag_fingerprint(_gnmf_like_dag(m=100))


def test_fingerprint_changes_with_block_size():
    assert dag_fingerprint(_gnmf_like_dag()) != dag_fingerprint(_gnmf_like_dag(bs=50))


def test_fingerprint_changes_with_density():
    assert dag_fingerprint(_gnmf_like_dag(density=0.1)) != dag_fingerprint(
        _gnmf_like_dag(density=0.3)
    )


def test_fingerprint_changes_with_mask():
    assert dag_fingerprint(_gnmf_like_dag(masked=True)) != dag_fingerprint(
        _gnmf_like_dag(masked=False)
    )


# -- planning signature --------------------------------------------------------


def test_signature_changes_with_config():
    base = FuseMEEngine(make_config())
    more_nodes = FuseMEEngine(make_config(num_nodes=4))
    other_threshold = FuseMEEngine(make_config(sparse_threshold=0.5))
    exhaustive = FuseMEEngine(make_config(), optimizer_method="exhaustive")
    signatures = {
        base.planning_signature(),
        more_nodes.planning_signature(),
        other_threshold.planning_signature(),
        exhaustive.planning_signature(),
    }
    assert len(signatures) == 4


# -- engine-level behaviour ----------------------------------------------------


def test_reexecute_hits_and_matches():
    engine = FuseMEEngine(make_config())
    inputs = _inputs()
    first = engine.execute(_gnmf_like_dag(), inputs)
    second = engine.execute(_gnmf_like_dag(), inputs)
    assert engine.plan_cache.misses == 1
    assert engine.plan_cache.hits == 1
    assert first.metrics.counter("plan_cache_misses") == 1
    assert second.metrics.counter("plan_cache_hits") == 1
    assert np.array_equal(first.output().to_numpy(), second.output().to_numpy())
    # modeled numbers must be unaffected by the cached fast path
    assert first.metrics.elapsed_seconds == second.metrics.elapsed_seconds
    assert first.metrics.comm_bytes == second.metrics.comm_bytes


def test_structural_changes_miss():
    engine = FuseMEEngine(make_config())
    engine.execute(_gnmf_like_dag(), _inputs())
    engine.execute(_gnmf_like_dag(density=0.3), _inputs(density=0.3))
    engine.execute(_gnmf_like_dag(masked=True), _inputs())
    assert engine.plan_cache.hits == 0
    assert engine.plan_cache.misses == 3
    assert engine.plan_cache.num_entries == 3


def test_disabled_cache_never_stores():
    engine = FuseMEEngine(make_config(plan_cache_size=0))
    inputs = _inputs()
    engine.execute(_gnmf_like_dag(), inputs)
    engine.execute(_gnmf_like_dag(), inputs)
    assert engine.plan_cache.hits == 0
    assert engine.plan_cache.misses == 0
    assert engine.plan_cache.num_entries == 0


def test_lru_eviction_at_capacity():
    cache = PlanCache(capacity=1)
    cache.put("a", PlanCacheEntry(dag=None, fusion_plan=None))
    cache.put("b", PlanCacheEntry(dag=None, fusion_plan=None))
    assert cache.num_entries == 1
    assert cache.get("a") is None
    assert cache.get("b") is not None


def test_hit_result_matches_fresh_engine():
    inputs = _inputs()
    warm = FuseMEEngine(make_config())
    warm.execute(_gnmf_like_dag(), inputs)
    cached = warm.execute(_gnmf_like_dag(), inputs)
    cold = FuseMEEngine(make_config()).execute(_gnmf_like_dag(), inputs)
    assert warm.plan_cache.hits == 1
    assert np.array_equal(cached.output().to_numpy(), cold.output().to_numpy())
    assert cached.metrics.elapsed_seconds == cold.metrics.elapsed_seconds
    assert cached.metrics.comm_bytes == cold.metrics.comm_bytes
