"""Tests for the 3-D model space: axis tags, space trees, sparsity masks."""


from repro.core.plan import PartialFusionPlan
from repro.core.spaces import (
    AxisKind,
    SpaceKind,
    assign_axis_tags,
    build_space_tree,
    find_sparsity_mask,
    plan_layout,
)
from repro.lang import DAG, log, matrix_input, nnz_mask, sq, sum_of


def nmf_plan():
    x = matrix_input("X", 200, 150, 25, density=0.05)
    u = matrix_input("U", 200, 50, 25)
    v = matrix_input("V", 150, 50, 25)
    expr = x * log(u @ v.T + 1e-8)
    dag = DAG(expr.node)
    return PartialFusionPlan(set(dag.operators()), dag), dag


def gnmf_u_plan():
    """U * (V^T X) / (V^T V U): nested multiplications in O-space."""
    x = matrix_input("X", 200, 150, 25, density=0.05)
    u = matrix_input("U", 50, 150, 25)
    v = matrix_input("V", 200, 50, 25)
    expr = u * (v.T @ x) / (v.T @ v @ u)
    dag = DAG(expr.node)
    return PartialFusionPlan(set(dag.operators()), dag), dag


class TestAxisTags:
    def test_mm_gets_ij(self):
        plan, dag = nmf_plan()
        mm = plan.main_matmul()
        tags = assign_axis_tags(plan, mm)
        tag = tags.operator_tags[mm]
        assert (tag[0].kind, tag[1].kind) == (AxisKind.I, AxisKind.J)

    def test_operands_get_ik_kj(self):
        plan, dag = nmf_plan()
        mm = plan.main_matmul()
        tags = assign_axis_tags(plan, mm)
        left = tags.tag_of_operand(mm, 0)
        right = tags.tag_of_operand(mm, 1)
        assert (left[0].kind, left[1].kind) == (AxisKind.I, AxisKind.K)
        assert (right[0].kind, right[1].kind) == (AxisKind.K, AxisKind.J)

    def test_transpose_swaps(self):
        plan, dag = nmf_plan()
        mm = plan.main_matmul()
        tags = assign_axis_tags(plan, mm)
        transpose = next(n for n in plan.nodes if n.label() == "r(T)")
        v_edge = tags.tag_of_operand(transpose, 0)
        # V itself is J x K, the transpose flips it into the (K, J) plane
        assert (v_edge[0].kind, v_edge[1].kind) == (AxisKind.J, AxisKind.K)

    def test_o_space_aligned_with_ij(self):
        plan, dag = nmf_plan()
        mm = plan.main_matmul()
        tags = assign_axis_tags(plan, mm)
        root_tag = tags.operator_tags[plan.root]
        assert (root_tag[0].kind, root_tag[1].kind) == (AxisKind.I, AxisKind.J)

    def test_nested_mm_gets_private_contraction(self):
        plan, dag = gnmf_u_plan()
        layout = plan_layout(plan)
        # every frontier edge tag is fully assigned
        for node in plan.topo_nodes():
            for idx, child in enumerate(node.inputs):
                if child not in plan.nodes:
                    assert (node, idx) in layout.tags.frontier_tags
        kinds = {
            (t[0].kind, t[1].kind)
            for t in layout.tags.frontier_tags.values()
        }
        assert any(AxisKind.PRIVATE in pair for pair in kinds)


class TestSpaceTree:
    def test_nmf_spaces(self):
        plan, dag = nmf_plan()
        tree = build_space_tree(plan)
        assert tree.space(SpaceKind.L).materialized  # U feeds the left side
        assert tree.space(SpaceKind.R).operators  # the transpose of V
        o_labels = [n.label() for n in tree.space(SpaceKind.O).operators]
        assert "b(mul)" in o_labels and "u(log)" in o_labels

    def test_gnmf_nested_in_o_space(self):
        plan, dag = gnmf_u_plan()
        tree = build_space_tree(plan)
        o_space = tree.space(SpaceKind.O)
        assert len(o_space.nested) == 1  # the (V^T V) U chain
        inner = o_space.nested[0]
        assert inner.all_nested() or inner.spaces  # recursively built

    def test_all_nested_collects_recursively(self):
        plan, dag = gnmf_u_plan()
        tree = build_space_tree(plan)
        nested = tree.all_nested()
        assert len(nested) == 2  # (V^T V) U  and  V^T V

    def test_produces_output_only_outermost(self):
        plan, dag = gnmf_u_plan()
        tree = build_space_tree(plan)
        assert tree.produces_output
        assert all(not n.produces_output for n in tree.all_nested())


class TestSparsityMask:
    def test_nmf_mask_found(self):
        plan, dag = nmf_plan()
        layout = plan_layout(plan)
        mask = find_sparsity_mask(plan, layout.mm, layout.tree)
        assert mask is not None
        assert mask.mask_mul is plan.root

    def test_als_mask_found_through_mask_chain(self):
        x = matrix_input("X", 100, 75, 25, density=0.02)
        u = matrix_input("U", 100, 50, 25)
        v = matrix_input("V", 50, 75, 25)
        expr = sum_of(nnz_mask(x) * sq(x - u @ v))
        dag = DAG(expr.node)
        plan = PartialFusionPlan(set(dag.operators()), dag)
        layout = plan_layout(plan)
        mask = find_sparsity_mask(plan, layout.mm, layout.tree)
        assert mask is not None

    def test_dense_mask_rejected(self):
        x = matrix_input("X", 100, 75, 25, density=0.9)
        u = matrix_input("U", 100, 50, 25)
        v = matrix_input("V", 50, 75, 25)
        dag = DAG((x * (u @ v)).node)
        plan = PartialFusionPlan(set(dag.operators()), dag)
        layout = plan_layout(plan)
        assert find_sparsity_mask(plan, layout.mm, layout.tree) is None

    def test_nested_mm_in_o_space_blocks_mask(self):
        plan, dag = gnmf_u_plan()
        layout = plan_layout(plan)
        assert find_sparsity_mask(plan, layout.mm, layout.tree) is None

    def test_escaping_path_blocks_mask(self):
        """If the product also reaches the root around the mask, no mask."""
        x = matrix_input("X", 100, 75, 25, density=0.02)
        u = matrix_input("U", 100, 50, 25)
        v = matrix_input("V", 50, 75, 25)
        product = u @ v
        expr = (x * product) + product  # second path escapes the mul
        dag = DAG(expr.node)
        # product has 2 consumers, so a fused plan containing both paths
        plan = PartialFusionPlan(set(dag.operators()), dag)
        layout = plan_layout(plan)
        assert find_sparsity_mask(plan, layout.mm, layout.tree) is None


class TestPlanLayout:
    def test_layout_mm_is_largest(self):
        plan, dag = gnmf_u_plan()
        layout = plan_layout(plan)
        volumes = {
            m: m.inputs[0].meta.rows * m.inputs[1].meta.cols * m.common_dim
            for m in plan.matmuls()
        }
        assert volumes[layout.mm] == max(volumes.values())

    def test_layout_falls_back_when_root_contracts_stream(self):
        """((X @ U) @ W): the root multiplication contracts the product of
        the larger one; the layout must still ground the output."""
        x = matrix_input("X", 200, 150, 25)
        u = matrix_input("U", 150, 100, 25)
        w = matrix_input("W", 100, 50, 25)
        dag = DAG(((x @ u) @ w).node)
        plan = PartialFusionPlan(set(dag.operators()), dag)
        layout = plan_layout(plan)
        root_tag = layout.tags.operator_tags[plan.root]
        assert {root_tag[0].kind, root_tag[1].kind} <= {AxisKind.I, AxisKind.J}
