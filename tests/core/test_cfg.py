"""Tests for the Cuboid-based Fusion plan Generator (Algorithms 2 and 3).

The headline assertions mirror Figure 10: for GNMF, CFG finds two large
candidate plans containing the multiplications, while GEN-style generators
fuse only the two element-wise operators.
"""


from repro.core.cfg import (
    ExploitationReport,
    exploitation_phase,
    exploration_phase,
    generate_fusion_plan,
    is_termination,
)
from repro.lang import DAG, log, matrix_input, sum_of
from repro.lang.dag import AggNode, MatMulNode

from tests.conftest import make_config

BS = 25


def gnmf_dag():
    x = matrix_input("X", 200, 150, BS, density=0.05)
    u = matrix_input("U", 50, 150, BS)
    v = matrix_input("V", 200, 50, BS)
    u_update = u * (v.T @ x) / (v.T @ v @ u)
    v_update = v * (x @ u.T) / (v @ u @ u.T)
    return DAG([u_update.node, v_update.node])


def nmf_dag():
    x = matrix_input("X", 200, 150, BS, density=0.05)
    u = matrix_input("U", 200, 50, BS)
    v = matrix_input("V", 150, 50, BS)
    return DAG((x * log(u @ v.T + 1e-8)).node)


class TestTermination:
    def test_shared_operator_is_termination(self):
        x = matrix_input("X", 100, 100, BS)
        shared = (x * 2.0)
        from repro.lang.dag import BinaryNode

        root = BinaryNode("add", shared.node, shared.node)
        dag = DAG(root)
        assert is_termination(dag, shared.node)

    def test_aggregation_is_termination(self):
        x = matrix_input("X", 100, 100, BS)
        dag = DAG(sum_of(x * 2.0).node)
        agg = next(n for n in dag.nodes() if isinstance(n, AggNode))
        assert is_termination(dag, agg)

    def test_plain_operator_is_not(self):
        dag = nmf_dag()
        mul = dag.roots[0]
        assert not is_termination(dag, mul)


class TestExploration:
    def test_nmf_single_candidate_covers_everything(self):
        dag = nmf_dag()
        candidates = exploration_phase(dag)
        assert len(candidates) == 1
        assert len(candidates[0]) == sum(1 for _ in dag.operators())

    def test_gnmf_two_candidates(self):
        dag = gnmf_dag()
        candidates = exploration_phase(dag)
        assert len(candidates) == 2
        # each candidate contains both its update's multiplications
        for plan in candidates:
            assert len(plan.matmuls()) >= 2

    def test_gnmf_candidates_reach_the_division_top(self):
        dag = gnmf_dag()
        candidates = exploration_phase(dag)
        labels = {plan.root.label() for plan in candidates}
        assert labels == {"b(div)"}

    def test_shared_transposes_excluded(self):
        """V^T is consumed by two multiplications: it must materialize."""
        x = matrix_input("X", 200, 150, BS, density=0.05)
        u = matrix_input("U", 50, 150, BS)
        v = matrix_input("V", 200, 50, BS)
        vt = v.T
        expr = u * (vt @ x) / (vt @ v @ u)
        dag = DAG(expr.node)
        candidates = exploration_phase(dag)
        transpose = next(n for n in dag.nodes() if n.label() == "r(T)")
        for plan in candidates:
            assert transpose not in plan.nodes

    def test_no_matmul_no_candidates(self):
        x = matrix_input("X", 100, 100, BS)
        dag = DAG((x * 2.0 + 1.0).node)
        assert exploration_phase(dag) == []


class TestExploitation:
    def test_oversized_plan_splits(self):
        dag = gnmf_dag()
        candidates = exploration_phase(dag)
        config = make_config(task_memory_budget=60_000)
        report = ExploitationReport()
        final = exploitation_phase(candidates, config, report)
        assert len(final) > len(candidates)
        assert report.splits >= 1

    def test_roomy_budget_keeps_plans_intact_or_splits_by_cost(self):
        dag = gnmf_dag()
        candidates = exploration_phase(dag)
        config = make_config(task_memory_budget=1 << 40)
        final = exploitation_phase(candidates, config)
        # all original operators still covered exactly once
        covered = [n for plan in final for n in plan.nodes]
        assert len(covered) == len(set(covered))

    def test_split_plans_are_rooted_at_matmuls(self):
        dag = gnmf_dag()
        candidates = exploration_phase(dag)
        config = make_config(task_memory_budget=60_000)
        final = exploitation_phase(candidates, config)
        extra = [p for p in final if p.root.label() == "ba(x)"]
        assert all(isinstance(p.root, MatMulNode) for p in extra)


class TestGenerateFusionPlan:
    def test_covers_all_operators(self):
        dag = gnmf_dag()
        fp = generate_fusion_plan(dag, make_config())
        covered = set()
        for unit in fp:
            covered |= unit.plan.nodes
        assert covered == {n for n in dag.nodes() if n.is_operator}

    def test_dependency_order(self):
        dag = gnmf_dag()
        fp = generate_fusion_plan(dag, make_config())
        produced = set()
        for unit in fp:
            for dep in unit.dependencies():
                if dep.is_operator:
                    assert dep in produced
            produced.add(unit.output)

    def test_exploitation_toggle(self):
        dag = gnmf_dag()
        config_off = make_config(exploitation_phase=False,
                                 task_memory_budget=60_000)
        config_on = make_config(exploitation_phase=True,
                                task_memory_budget=60_000)
        fp_off = generate_fusion_plan(dag, config_off)
        fp_on = generate_fusion_plan(dag, config_on)
        assert len(fp_on.units) >= len(fp_off.units)

    def test_matmul_free_query_cell_fused(self):
        x = matrix_input("X", 100, 100, BS)
        y = matrix_input("Y", 100, 100, BS)
        dag = DAG((x * y + 2.0).node)
        fp = generate_fusion_plan(dag, make_config())
        assert len(fp.units) == 1
        assert fp.units[0].is_fused

    def test_fuses_more_than_gen_on_gnmf(self):
        """The Figure 10 comparison: CFG's largest unit strictly exceeds
        GEN's largest ({mul, div} = 2 operators)."""
        from repro.baselines.gen import GenPlanner

        dag = gnmf_dag()
        cfg_plan = generate_fusion_plan(dag, make_config())
        gen_plan = GenPlanner(make_config()).plan(dag)
        cfg_largest = max(len(u.plan) for u in cfg_plan)
        gen_largest = max(len(u.plan) for u in gen_plan)
        assert gen_largest == 2
        assert cfg_largest > gen_largest
