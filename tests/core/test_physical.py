"""Golden lowering tests: fusion plans lower to the expected unit graph."""

import pytest

from repro import DistMELikeEngine, FuseMEEngine, LocalXLAEngine
from repro.cluster import SimulatedCluster
from repro.core.physical import PhysicalPlan, UnitOp, lower_plan
from repro.errors import PlanError
from repro.execution import as_dag
from repro.lang import matrix_input
from repro.lang.dag import InputNode
from repro.matrix import rand_dense, rand_sparse
from repro.workloads.als import als_loss_query
from repro.workloads.gnmf import gnmf_updates

from tests.conftest import make_config

BS = 20


def _consumed_names(unit):
    return {
        d.name for d in unit.dependencies() if isinstance(d, InputNode)
    }


class TestGNMFLowering:
    """The two-root GNMF update DAG (Eq. 6): the canonical multi-unit plan."""

    @pytest.fixture
    def physical(self) -> PhysicalPlan:
        q = gnmf_updates(100, 80, 20, density=0.1, block_size=BS)
        engine = FuseMEEngine(make_config(block_size=BS))
        return engine.lower_query([q.u_update, q.v_update])

    def test_unit_graph_shape(self, physical):
        """Four CFO units in two dependency waves: each root's division
        chain depends on one standalone product built in wave 0."""
        assert len(physical.ops) == 4
        waves = physical.waves()
        assert [len(w) for w in waves] == [2, 2]
        assert all(op.kind == "cfo" for op in physical.ops)
        # every matmul unit carries its cuboid search outcome
        for op in physical.ops:
            assert op.pqr is not None
            assert op.optimizer_result is not None
            assert op.estimate is not None and op.estimate.seconds is not None

    def test_dependency_edges(self, physical):
        """Wave-0 units are independent; each wave-1 unit consumes exactly
        one of them (the edges derived from the query DAG)."""
        deps = [op.deps for op in physical.ops]
        assert deps[0] == () and deps[1] == ()
        assert {deps[2], deps[3]} == {(0,), (1,)}

    def test_lifetimes_release_everything_but_roots(self, physical):
        """Every intermediate and every input is released exactly once, at
        its last consumer; DAG roots are never released."""
        released = [key for op in physical.ops for key in op.releases]
        assert len(released) == len(set(released))
        root_ids = {root.node_id for root in physical.dag.roots}
        assert root_ids.isdisjoint(set(released))
        # both wave-0 intermediates die at their single consumer
        for producer in (0, 1):
            out_id = physical.ops[producer].unit.output.node_id
            consumer = next(
                op for op in physical.ops if producer in op.deps
            )
            assert out_id in consumer.releases
        # each input name is released at the *last* unit that reads it
        for name in ("X", "U", "V"):
            consumers = [
                op.index for op in physical.ops
                if name in _consumed_names(op.unit)
            ]
            releaser = next(
                op.index for op in physical.ops if name in op.releases
            )
            assert releaser == max(consumers)

    def test_render_mentions_every_unit(self, physical):
        text = physical.render()
        assert "PhysicalPlan[FuseME]" in text
        assert "2 root(s)" in text
        for op in physical.ops:
            assert f"[{op.index}] {op.kind}" in text
            assert f"pqr={op.pqr}" in text


class TestALSLowering:
    def test_single_fused_unit(self):
        """Figure 1(a)'s loss fuses to one CFO consuming all three inputs."""
        q = als_loss_query(100, 80, 20, density=0.1, block_size=BS)
        physical = FuseMEEngine(make_config(block_size=BS)).lower_query(q.expr)
        assert len(physical.ops) == 1
        (op,) = physical.ops
        assert op.kind == "cfo"
        assert op.deps == ()
        assert sorted(op.releases, key=str) == ["U", "V", "X"]
        assert physical.critical_path_seconds() is not None


class TestBaselineLowering:
    def test_distme_lowers_every_operator_standalone(self):
        x = matrix_input("X", 100, 80, BS)
        u = matrix_input("U", 100, 20, BS)
        v = matrix_input("V", 20, 80, BS)
        physical = DistMELikeEngine(make_config(block_size=BS)).lower_query(
            x * 2.0 + u @ v
        )
        kinds = sorted(op.kind for op in physical.ops)
        assert "cuboid-mm" in kinds and "cell" in kinds
        mm = next(op for op in physical.ops if op.kind == "cuboid-mm")
        assert mm.pqr is not None

    def test_local_xla_is_one_synthetic_unit(self):
        x = matrix_input("X", 100, 80, BS)
        physical = LocalXLAEngine(make_config(block_size=BS)).lower_query(
            [x * 2.0, x + 1.0]
        )
        assert len(physical.ops) == 1
        (op,) = physical.ops
        assert op.kind == "xla-fused"
        assert op.unit is None
        assert len(op.outputs) == 2
        assert "xla-fused" in physical.render()


class TestExplain:
    def test_explain_opens_zero_stages(self):
        """EXPLAIN must plan and lower without touching the cluster."""
        q = gnmf_updates(100, 80, 20, density=0.1, block_size=BS)
        config = make_config(block_size=BS)
        engine = FuseMEEngine(config)
        cluster = SimulatedCluster(config)
        text = engine.explain([q.u_update, q.v_update])
        assert cluster.metrics.num_stages == 0
        assert engine.plan_cache.num_entries == 1  # cache warmed, not run
        assert "cfo" in text and "pqr=" in text

    def test_explain_matches_execution_plan(self):
        """The plan EXPLAIN shows is the plan execute() runs (same cache
        entry, so the cuboid search is not repeated)."""
        q = als_loss_query(100, 80, 20, density=0.1, block_size=BS)
        engine = FuseMEEngine(make_config(block_size=BS))
        shown = engine.explain(q.expr)
        inputs = {
            "X": rand_sparse(100, 80, density=0.1, block_size=BS, seed=1),
            "U": rand_dense(100, 20, BS, seed=2),
            "V": rand_dense(20, 80, BS, seed=3),
        }
        result = engine.execute(q.expr, inputs)
        assert result.physical_plan.render() == shown
        assert result.metrics.counter("plan_cache_hits") == 1

    def test_served_explain_passthrough(self):
        from repro.serving import MatrixService

        q = als_loss_query(100, 80, 20, density=0.1, block_size=BS)
        engine = FuseMEEngine(make_config(block_size=BS))
        with MatrixService(engine) as service:
            session = service.open_session("alice").bind_many({
                "X": rand_sparse(100, 80, density=0.1, block_size=BS, seed=1),
                "U": rand_dense(100, 20, BS, seed=2),
                "V": rand_dense(20, 80, BS, seed=3),
            })
            text = session.explain(q.expr)
            assert "PhysicalPlan[FuseME]" in text
            assert service.cluster.metrics.num_stages == 0


class TestPlanValidation:
    def test_forward_dependency_rejected(self):
        x = matrix_input("X", 40, 40, BS)
        dag = FuseMEEngine(make_config(block_size=BS)).prepare_dag(
            as_dag(x * 2.0)
        )
        bogus = UnitOp(
            index=0, unit=None, kind="cell", deps=(1,), outputs=(), releases=()
        )
        with pytest.raises(PlanError, match="does not precede"):
            PhysicalPlan(dag, [bogus])

    def test_lower_plan_is_deterministic(self):
        q = gnmf_updates(100, 80, 20, density=0.1, block_size=BS)
        engine = FuseMEEngine(make_config(block_size=BS))
        dag = engine.prepare_dag(as_dag([q.u_update, q.v_update]))
        fusion = engine.plan_query(dag)
        a = lower_plan(dag, fusion, engine.annotate_unit)
        b = lower_plan(dag, fusion, engine.annotate_unit)
        assert [op.deps for op in a.ops] == [op.deps for op in b.ops]
        assert [op.releases for op in a.ops] == [op.releases for op in b.ops]
        assert [op.pqr for op in a.ops] == [op.pqr for op in b.ops]
