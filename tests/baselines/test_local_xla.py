"""Focused tests for the TensorFlow-XLA-like single-node baseline."""

import numpy as np
import pytest

from repro.baselines import LocalXLAEngine
from repro.errors import PlanError, TaskOutOfMemoryError
from repro.lang import DAG, evaluate, log, matrix_input, sum_of
from repro.matrix import rand_dense, rand_sparse

from tests.conftest import make_config

BS = 25


@pytest.fixture
def setting():
    inputs = {
        "X": rand_sparse(150, 100, 0.1, BS, seed=1),
        "U": rand_dense(150, 50, BS, seed=2),
        "V": rand_dense(100, 50, BS, seed=3),
    }
    x = matrix_input("X", 150, 100, BS, density=0.1)
    u = matrix_input("U", 150, 50, BS)
    v = matrix_input("V", 100, 50, BS)
    return (x, u, v), inputs


class TestExecution:
    def test_matches_reference(self, setting):
        (x, u, v), inputs = setting
        expr = x * log(u @ v.T + 1e-8)
        result = LocalXLAEngine(make_config()).execute(expr, inputs)
        expected = evaluate(
            DAG(expr.node).roots[0],
            {k: m.to_numpy() for k, m in inputs.items()},
        )
        np.testing.assert_allclose(result.output().to_numpy(), expected, atol=1e-8)

    def test_scalar_output_block_shape(self, setting):
        (x, u, v), inputs = setting
        result = LocalXLAEngine(make_config()).execute(sum_of(x), inputs)
        assert result.output().shape == (1, 1)

    def test_single_stage(self, setting):
        (x, u, v), inputs = setting
        result = LocalXLAEngine(make_config()).execute(x * 2.0, inputs)
        assert result.metrics.num_stages == 1
        assert result.metrics.stages[0].num_tasks == 1

    def test_node_memory_is_tasks_times_budget(self):
        engine = LocalXLAEngine(make_config(task_memory_budget=1000,
                                            tasks_per_node=4))
        assert engine.node_memory == 4000

    def test_missing_binding_rejected(self, setting):
        (x, u, v), inputs = setting
        del inputs["U"]
        with pytest.raises(PlanError):
            LocalXLAEngine(make_config()).execute(u @ v.T, inputs)

    def test_elapsed_scales_with_flops(self, setting):
        (x, u, v), inputs = setting
        small = LocalXLAEngine(make_config()).execute(x * 2.0, inputs)
        big = LocalXLAEngine(make_config()).execute(
            (u @ v.T) * 1.0, inputs
        )
        assert big.metrics.flops > small.metrics.flops
        assert big.elapsed_seconds >= small.elapsed_seconds

    def test_oom_includes_working_set(self, setting):
        (x, u, v), inputs = setting
        config = make_config(task_memory_budget=10_000, tasks_per_node=2)
        with pytest.raises(TaskOutOfMemoryError) as exc:
            LocalXLAEngine(config).execute(u @ v.T, inputs)
        assert exc.value.task_id == "xla-node"
