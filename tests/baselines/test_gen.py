"""Tests for the GEN planner: template behaviour the paper describes."""


from repro.baselines.gen import GenPlanner
from repro.lang import DAG, log, matrix_input, nnz_mask, sq, sum_of

from tests.conftest import make_config

BS = 25


def plan_units(dag):
    return GenPlanner(make_config()).plan(dag)


class TestOuterTemplate:
    def test_sparse_masked_matmul_fuses_whole_query(self):
        """X * log(U V^T + eps) with sparse X: Outer fuses everything."""
        x = matrix_input("X", 200, 150, BS, density=0.05)
        u = matrix_input("U", 200, 50, BS)
        v = matrix_input("V", 150, 50, BS)
        dag = DAG((x * log(u @ v.T + 1e-8)).node)
        fp = plan_units(dag)
        assert len(fp.units) == 1
        assert fp.units[0].plan.contains_matmul

    def test_dense_mask_blocks_outer(self):
        """GEN includes a multiplication only when sparsity exploitation is
        possible — a dense mask means no Outer template."""
        x = matrix_input("X", 200, 150, BS, density=0.9)
        u = matrix_input("U", 200, 50, BS)
        v = matrix_input("V", 150, 50, BS)
        dag = DAG((x * (u @ v.T)).node)
        fp = plan_units(dag)
        fused_mms = [u for u in fp.units if u.plan.contains_matmul and u.is_fused]
        assert not fused_mms

    def test_als_loss_fused_with_aggregation_top(self):
        x = matrix_input("X", 200, 150, BS, density=0.05)
        u = matrix_input("U", 200, 50, BS)
        v = matrix_input("V", 50, 150, BS)
        dag = DAG(sum_of(nnz_mask(x) * sq(x - u @ v)).node)
        fp = plan_units(dag)
        big = max(fp.units, key=lambda u: len(u.plan))
        assert big.plan.contains_matmul
        assert big.plan.root.label() == "ua(sum)"


class TestGnmfBehaviour:
    def test_only_elementwise_pair_fused(self):
        """Figure 10: SystemDS fuses exactly {mul, div} for GNMF."""
        x = matrix_input("X", 200, 150, BS, density=0.05)
        u = matrix_input("U", 50, 150, BS)
        v = matrix_input("V", 200, 50, BS)
        expr = u * (v.T @ x) / (v.T @ v @ u)
        dag = DAG(expr.node)
        fp = plan_units(dag)
        fused = [unit for unit in fp.units if unit.is_fused]
        assert len(fused) == 1
        labels = sorted(n.label() for n in fused[0].plan.nodes)
        assert labels == ["b(div)", "b(mul)"]

    def test_matmuls_run_standalone(self):
        x = matrix_input("X", 200, 150, BS, density=0.05)
        u = matrix_input("U", 50, 150, BS)
        v = matrix_input("V", 200, 50, BS)
        expr = u * (v.T @ x) / (v.T @ v @ u)
        dag = DAG(expr.node)
        fp = plan_units(dag)
        standalone_mms = [
            unit for unit in fp.units
            if unit.plan.contains_matmul and len(unit.plan) == 1
        ]
        assert len(standalone_mms) == 3


class TestRowTemplate:
    def test_pca_pattern_fully_fused(self):
        """Figure 2(b): (X x S)^T x X fuses into one Row unit — the rows of
        X are scanned once."""
        x = matrix_input("X", 200, 150, BS)
        s = matrix_input("S", 150, 25, BS)
        dag = DAG(((x @ s).T @ x).node)
        fp = plan_units(dag)
        assert len(fp.units) == 1
        labels = sorted(n.label() for n in fp.units[0].plan.nodes)
        assert labels == ["ba(x)", "ba(x)", "r(T)"]

    def test_wide_side_not_row_fused(self):
        """A wide right operand is not a Row candidate."""
        x = matrix_input("X", 200, 150, BS)
        s = matrix_input("S", 150, 100, BS)  # 4 blocks wide
        dag = DAG(((x @ s).T @ x).node)
        fp = plan_units(dag)
        assert len(fp.units) > 1


class TestMultiAggTemplate:
    def test_figure2d_merged(self):
        from repro.core.plan import MultiAggPlan

        x = matrix_input("X", 100, 100, BS)
        u = matrix_input("U", 100, 100, BS)
        v = matrix_input("V", 100, 100, BS)
        dag = DAG([sum_of(u * x).node, sum_of(x * v).node])
        fp = plan_units(dag)
        multi = [un for un in fp.units if isinstance(un.plan, MultiAggPlan)]
        assert len(multi) == 1


class TestCoverage:
    def test_all_operators_covered(self):
        x = matrix_input("X", 200, 150, BS, density=0.05)
        u = matrix_input("U", 200, 50, BS)
        v = matrix_input("V", 150, 50, BS)
        dag = DAG([(x * log(u @ v.T + 1e-8)).node, sum_of(x * 2.0).node])
        fp = plan_units(dag)
        covered = set()
        for unit in fp.units:
            covered |= unit.plan.nodes
        assert covered == {n for n in dag.nodes() if n.is_operator}

    def test_pure_elementwise_cell_fused(self):
        x = matrix_input("X", 100, 100, BS)
        y = matrix_input("Y", 100, 100, BS)
        dag = DAG((x * y / (x + 1.0)).node)
        fp = plan_units(dag)
        assert len(fp.units) == 1
