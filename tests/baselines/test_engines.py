"""Engine-level tests for the four baselines: correctness, policy and the
failure modes the paper reports (MatFast O.O.M., SystemDS B/R choice)."""

import numpy as np
import pytest

from repro import (
    DistMELikeEngine,
    FuseMEEngine,
    LocalXLAEngine,
    MatFastLikeEngine,
    SystemDSLikeEngine,
)
from repro.errors import TaskOutOfMemoryError
from repro.lang import DAG, evaluate, log, matrix_input
from repro.matrix import rand_dense, rand_sparse

from tests.conftest import make_config

BS = 25


@pytest.fixture
def nmf():
    inputs = {
        "X": rand_sparse(200, 150, 0.05, BS, seed=1),
        "U": rand_dense(200, 50, BS, seed=2),
        "V": rand_dense(150, 50, BS, seed=3),
    }
    x = matrix_input("X", 200, 150, BS, density=0.05)
    u = matrix_input("U", 200, 50, BS)
    v = matrix_input("V", 150, 50, BS)
    expr = x * log(u @ v.T + 1e-8)
    expected = evaluate(
        DAG(expr.node).roots[0], {k: m.to_numpy() for k, m in inputs.items()}
    )
    return expr, inputs, expected


ALL_ENGINES = [
    FuseMEEngine,
    SystemDSLikeEngine,
    MatFastLikeEngine,
    DistMELikeEngine,
    LocalXLAEngine,
]


class TestCorrectness:
    @pytest.mark.parametrize("engine_cls", ALL_ENGINES)
    def test_nmf_query(self, nmf, engine_cls):
        expr, inputs, expected = nmf
        result = engine_cls(make_config()).execute(expr, inputs)
        np.testing.assert_allclose(result.output().to_numpy(), expected, atol=1e-8)


class TestSystemDSPolicy:
    def test_bfo_for_sparse_main(self, nmf):
        expr, inputs, _ = nmf
        engine = SystemDSLikeEngine(make_config(input_split_bytes=1 << 20))
        engine.execute(expr, inputs)
        assert any(choice.startswith("bfo") for choice in engine.last_choices)

    def test_rfo_for_denser_main(self):
        """Denser X yields more partitions than I and J: RFO chosen
        (the Section 6.2 selection rule)."""
        inputs = {
            "X": rand_sparse(200, 150, 0.2, BS, seed=1),
            "U": rand_dense(200, 50, BS, seed=2),
            "V": rand_dense(150, 50, BS, seed=3),
        }
        x = matrix_input("X", 200, 150, BS, density=0.2)
        u = matrix_input("U", 200, 50, BS)
        v = matrix_input("V", 150, 50, BS)
        expr = x * (u @ v.T)
        engine = SystemDSLikeEngine(make_config(input_split_bytes=8 * 1024))
        engine.execute(expr, inputs)
        assert any(choice.startswith("rfo") for choice in engine.last_choices)


class TestMatFastPolicy:
    def test_no_sparsity_exploitation(self, nmf):
        expr, inputs, _ = nmf
        engine = MatFastLikeEngine(make_config())
        assert engine.config.sparsity_exploitation is False

    def test_oom_when_broadcast_side_too_big(self, nmf):
        """MatFast's broadcast matmul dies when a factor exceeds the task
        budget (Figure 14(g))."""
        expr, inputs, _ = nmf
        config = make_config(task_memory_budget=90_000)
        with pytest.raises(TaskOutOfMemoryError):
            MatFastLikeEngine(config).execute(expr, inputs)

    def test_fuseme_survives_same_budget(self, nmf):
        expr, inputs, expected = nmf
        config = make_config(task_memory_budget=90_000)
        result = FuseMEEngine(config).execute(expr, inputs)
        np.testing.assert_allclose(result.output().to_numpy(), expected, atol=1e-8)


class TestDistME:
    def test_every_operator_materializes(self, nmf):
        expr, inputs, _ = nmf
        result = DistMELikeEngine(make_config()).execute(expr, inputs)
        dag = result.dag
        n_ops = sum(1 for _ in dag.operators())
        assert len(result.fusion_plan.units) == n_ops

    def test_more_comm_than_fuseme(self, nmf):
        expr, inputs, _ = nmf
        config = make_config()
        distme = DistMELikeEngine(config).execute(expr, inputs)
        fuseme = FuseMEEngine(config).execute(expr, inputs)
        assert distme.comm_bytes > fuseme.comm_bytes


class TestLocalXLA:
    def test_no_communication(self, nmf):
        expr, inputs, _ = nmf
        result = LocalXLAEngine(make_config()).execute(expr, inputs)
        assert result.comm_bytes == 0
        assert result.metrics.flops > 0

    def test_single_node_memory_limit(self, nmf):
        expr, inputs, _ = nmf
        config = make_config(task_memory_budget=40_000, tasks_per_node=2)
        with pytest.raises(TaskOutOfMemoryError):
            LocalXLAEngine(config).execute(expr, inputs)

    def test_multi_root(self, nmf):
        expr, inputs, _ = nmf
        x = matrix_input("X2", 200, 150, BS, density=0.05)
        result = LocalXLAEngine(make_config()).execute(
            [expr, expr * 2.0], inputs
        )
        assert len(result.outputs) == 2
