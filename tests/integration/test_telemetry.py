"""Full-stack telemetry: profiles, span trees, trace export, invariance.

The observability contract has two halves tested here.  Accountability:
``engine.profile()`` joins every unit's cost-model prediction with its
measured stage totals, the report is deterministic (golden-pinned for the
GNMF iteration), and a deliberately mis-calibrated model surfaces as a
nonzero relative error.  Non-invasiveness: with telemetry on or off, all
five engines produce bit-identical outputs and unchanged modeled totals —
counters and spans observe the run, they never steer it.
"""

import dataclasses
import math

import numpy as np
import pytest

from repro import (
    DistMELikeEngine,
    FuseMEEngine,
    LocalXLAEngine,
    MatFastLikeEngine,
    SystemDSLikeEngine,
)
from repro.cluster.runtime.trace import validate_chrome_trace
from repro.obs import MemorySink
from repro.workloads.gnmf import gnmf_updates

from tests.conftest import make_config

BS = 20

ENGINES = [
    FuseMEEngine,
    DistMELikeEngine,
    SystemDSLikeEngine,
    MatFastLikeEngine,
    LocalXLAEngine,
]


@pytest.fixture(scope="module")
def workload():
    from repro.matrix import rand_dense, rand_sparse

    q = gnmf_updates(100, 80, 20, density=0.2, block_size=BS)
    inputs = {
        "X": rand_sparse(100, 80, density=0.2, block_size=BS, seed=11),
        "U": rand_dense(20, 80, BS, seed=12, low=0.1, high=1.0),
        "V": rand_dense(100, 20, BS, seed=13, low=0.1, high=1.0),
    }
    return [q.u_update, q.v_update], inputs


# -- accountability ---------------------------------------------------------

GOLDEN_GNMF_REPORT = """\
QueryProfile[FuseME]: 4 unit(s), 8 stage(s); measured 0.4023s, predicted 0.002266s (err -99.4%)
unit  kind  pqr        sec(pred)  sec(meas)  sec err  net(pred)  net(meas)  net err  flops(pred)  flops(meas)  flops err  label
[0]   cfo   (1, 1, 5)  0.0001792  0.1005     -99.8%   4.48e+04   2.88e+04   +55.6%   8.2e+04      8.36e+04     -1.9%      F[r(T),ba(x)]
[1]   cfo   (4, 1, 2)  0.0007936  0.1005     -99.2%   1.984e+05  9.92e+04   +100.0%  6.464e+05    6.484e+05    -0.3%      F[ba(x),r(T),ba(x)]
[2]   cfo   (1, 4, 2)  0.0006912  0.1006     -99.3%   1.728e+05  1.491e+05  +15.9%   2.096e+05    1.433e+05    +46.2%     F[r(T),ba(x),b(mul),ba(x),b(add:,s1e-09),b(div)]
[3]   cfo   (4, 1, 2)  0.0006016  0.1007     -99.4%   1.504e+05  1.515e+05  -0.7%    8.24e+04     7.932e+04    +3.9%      F[r(T),ba(x),b(mul),b(add:,s1e-09),b(div)]
counters: cost_memo_hits=32, cost_memo_misses=83, cuboids_enumerated=65, cuboids_evaluated=52, cuboids_pruned=13, env_keys_released=5, plan_cache_misses=1, slice_cache_hits=91, slice_cache_misses=35"""


def test_golden_gnmf_profile_report(workload):
    """The GNMF-iteration EXPLAIN ANALYZE is pinned byte-for-byte: any
    change to the cost model, the lowering, or the modeled execution shows
    up as a diff of this report."""
    query, inputs = workload
    profile = FuseMEEngine(make_config(block_size=BS)).profile(query, inputs)
    assert profile.render() == GOLDEN_GNMF_REPORT


@pytest.mark.parametrize("engine_cls", ENGINES, ids=lambda c: c.name)
def test_profile_covers_every_unit(engine_cls, workload):
    query, inputs = workload
    engine = engine_cls(make_config(block_size=BS))
    profile = engine.profile(query, inputs)
    plan = profile.result.physical_plan
    assert [u.index for u in profile.units] == [op.index for op in plan.ops]
    for unit, op in zip(profile.units, plan.ops):
        assert unit.kind == op.kind
        assert unit.measured_seconds > 0.0
        assert unit.num_stages > 0
        # the rel-error triple is always present (None only where the
        # planner made no claim for that axis)
        for attr in ("seconds_error", "net_bytes_error", "flops_error"):
            error = getattr(unit, attr)
            assert error is None or isinstance(error, float)
        if op.estimate is not None:
            assert unit.net_bytes_error is not None
    assert profile.measured_seconds == pytest.approx(
        sum(u.measured_seconds for u in profile.units)
    )


def test_profile_aggregates_and_last_profile(workload):
    query, inputs = workload
    engine = FuseMEEngine(make_config(block_size=BS))
    profile = engine.profile(query, inputs)
    assert engine.last_profile is profile
    assert profile.engine == "FuseME"
    assert profile.wall_seconds is not None and profile.wall_seconds > 0.0
    assert profile.seconds_error is not None
    assert profile.mean_abs_seconds_error is not None
    assert profile.max_abs_seconds_error >= profile.mean_abs_seconds_error
    assert profile.counters["cuboids_enumerated"] > 0
    assert (
        profile.counters["cuboids_evaluated"]
        + profile.counters["cuboids_pruned"]
        == profile.counters["cuboids_enumerated"]
    )


def test_profile_requires_telemetry(workload):
    query, inputs = workload
    engine = FuseMEEngine(make_config(block_size=BS, telemetry=False))
    with pytest.raises(RuntimeError, match="telemetry"):
        engine.profile(query, inputs)
    result = engine.execute(query, inputs)
    assert result.profile is None
    assert engine.last_profile is None


class MiscalibratedFuseME(FuseMEEngine):
    """FuseME with every cost-model prediction inflated 1000x.

    Estimates are planner-side only, so execution is untouched — but the
    accountability join must expose the inflation as large positive error.
    """

    def annotate_unit(self, unit, hint=None):
        note = super().annotate_unit(unit, hint)
        if note.estimate is None:
            return note
        est = note.estimate
        scaled = dataclasses.replace(
            est,
            net_bytes=est.net_bytes * 1000.0,
            flops=est.flops * 1000.0,
            seconds=None if est.seconds is None else est.seconds * 1000.0,
        )
        return dataclasses.replace(note, estimate=scaled)


def test_perturbed_cost_model_surfaces_nonzero_error(workload):
    query, inputs = workload
    honest = FuseMEEngine(make_config(block_size=BS)).profile(query, inputs)
    skewed = MiscalibratedFuseME(make_config(block_size=BS)).profile(
        query, inputs
    )
    # execution is identical: predictions never feed the modeled run
    assert skewed.totals == honest.totals
    # ...but accountability sees straight through the inflation: the honest
    # model under-predicts (launch overhead isn't in its estimates), the
    # inflated one flips to large over-prediction
    assert honest.seconds_error < 0.0
    assert skewed.seconds_error > 1.0
    assert skewed.predicted_seconds == pytest.approx(
        honest.predicted_seconds * 1000.0
    )
    for honest_unit, unit in zip(honest.units, skewed.units):
        if unit.predicted_seconds is not None:
            assert honest_unit.seconds_error < 0.0 < unit.seconds_error
            assert unit.flops_error > 100.0


# -- non-invasiveness -------------------------------------------------------


@pytest.mark.parametrize("engine_cls", ENGINES, ids=lambda c: c.name)
def test_telemetry_is_bit_identical_noop(engine_cls, workload):
    """Outputs and every modeled total are unchanged by telemetry — with a
    sink attached and without."""
    query, inputs = workload
    on_engine = engine_cls(make_config(block_size=BS))
    on_engine.telemetry.attach(MemorySink())
    on = on_engine.execute(query, inputs)
    off = engine_cls(
        make_config(block_size=BS, telemetry=False)
    ).execute(query, inputs)

    assert on.metrics.totals() == off.metrics.totals()
    for root_on, root_off in zip(on.dag.roots, off.dag.roots):
        assert np.array_equal(
            on.outputs[root_on].to_numpy(), off.outputs[root_off].to_numpy()
        )
    assert on.profile is not None
    assert off.profile is None


def test_engine_bus_emits_profile_and_counters(workload):
    query, inputs = workload
    engine = FuseMEEngine(make_config(block_size=BS))
    sink = engine.telemetry.attach(MemorySink())
    engine.execute(query, inputs)
    profiles = sink.named("query.profile")
    assert len(profiles) == 1
    assert profiles[0].attrs["engine"] == "FuseME"
    assert profiles[0].attrs["profile"]["units"]
    totals = sink.named("engine.totals.elapsed_seconds")
    assert len(totals) == 1 and totals[0].value > 0.0
    assert sink.named("engine.counters.cuboids_enumerated")


# -- span trees + trace export ---------------------------------------------


def test_span_tree_shape_and_clocks(workload):
    query, inputs = workload
    profile = FuseMEEngine(
        make_config(block_size=BS, local_parallelism=4)
    ).profile(query, inputs)
    span = profile.span
    assert span.name == "query" and span.attrs["engine"] == "FuseME"
    assert [c.name for c in span.children] == ["plan", "execute"]

    plan = span.find("plan")
    assert plan.attrs["cache_hit"] is False
    assert plan.attrs["units"] == 4
    assert plan.attrs["optimizer_method"] == "pruned"
    assert plan.attrs["cuboids_enumerated"] > 0
    assert plan.attrs["exploitation_splits"] >= 0

    execute = span.find("execute")
    unit_spans = [c for c in execute.children if c.category == "unit"]
    assert [u.name for u in unit_spans] == [f"unit[{i}]" for i in range(4)]
    total_stage_spans = 0
    for unit in unit_spans:
        assert unit.wall_seconds >= 0.0
        assert unit.modeled_seconds > 0.0
        for stage in unit.children:
            assert stage.category == "stage"
            assert unit.modeled_start <= stage.modeled_start
            assert stage.modeled_end <= unit.modeled_end
            total_stage_spans += 1
    assert total_stage_spans == profile.totals["num_stages"]
    # the whole tree sits on the query's modeled window
    assert span.modeled_start == 0.0
    assert span.modeled_seconds == pytest.approx(profile.measured_seconds)


def test_plan_cache_hit_span_attrs(workload):
    query, inputs = workload
    engine = FuseMEEngine(make_config(block_size=BS))
    first = engine.profile(query, inputs)
    second = engine.profile(query, inputs)
    assert first.span.find("plan").attrs["cache_hit"] is False
    assert second.span.find("plan").attrs["cache_hit"] is True
    assert second.counters["plan_cache_hits"] == 1
    # optimizer counters describe the cached plan's recorded search
    assert second.counters["cuboids_enumerated"] == (
        first.counters["cuboids_enumerated"]
    )


def test_trace_carries_spans_and_cache_instants(workload):
    """Under the event-driven runtime the per-query trace interleaves
    stage/task events with span events and cache instant markers, and the
    Chrome export stays loadable."""
    query, inputs = workload
    engine = FuseMEEngine(
        make_config(block_size=BS, time_model="scheduled")
    )
    first = engine.execute(query, inputs)
    second = engine.execute(query, inputs)

    def names(trace, category):
        return [e.name for e in trace.events if e.category == category]

    spans = names(first.trace, "span")
    assert spans[:3] == ["query", "plan", "execute"]
    assert "unit[0]" in spans
    assert "plan_cache:miss" in names(first.trace, "cache")
    assert "plan_cache:hit" in names(second.trace, "cache")
    # slice reuse across executes emits the delta marker on the rerun
    assert any(
        e.name == "slice_cache" and e.args.get("hits", 0) > 0
        for e in second.trace.events if e.category == "cache"
    )
    # span rows live on the driver's span thread, apart from stage events
    for event in first.trace.events:
        if event.category == "span":
            assert event.pid == 0 and event.tid == 1
    validate_chrome_trace(first.trace.to_chrome_trace())
    validate_chrome_trace(second.trace.to_chrome_trace())


def test_spans_without_scheduled_trace_still_profile(workload):
    """The default time model has no TraceRecorder; profiles and span trees
    must work regardless."""
    query, inputs = workload
    result = FuseMEEngine(make_config(block_size=BS)).execute(query, inputs)
    assert result.trace is None
    assert result.profile is not None
    assert result.profile.span.find("unit[0]") is not None


def test_wall_and_modeled_clocks_are_distinct(workload):
    query, inputs = workload
    profile = FuseMEEngine(make_config(block_size=BS)).profile(query, inputs)
    # modeled seconds are simulated; wall seconds are real and tiny here
    assert profile.measured_seconds > 0.1  # modeled
    assert profile.wall_seconds < 60.0  # real
    assert math.isfinite(profile.wall_seconds)
    for unit in profile.units:
        span = profile.span.find(f"unit[{unit.index}]")
        assert span.modeled_seconds == pytest.approx(unit.measured_seconds)
