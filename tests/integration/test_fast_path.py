"""The execution fast path must be invisible in results and modeled metrics.

Every combination of engine (CFO via FuseME, BFO/RFO via SystemDS), time
model and ``local_parallelism`` must produce bit-identical outputs and the
exact same MetricsCollector totals as the serial baseline with every fast
path disabled — speed is the only thing allowed to change.
"""

import numpy as np
import pytest

from repro import FuseMEEngine, SystemDSLikeEngine
from repro.lang import DAG, matrix_input, nnz_mask, sq, sum_of
from repro.matrix import rand_dense, rand_sparse

from tests.conftest import make_config

BS = 25
M, N, K = 100, 75, 25


def _query():
    x = matrix_input("X", M, N, BS, density=0.1)
    u = matrix_input("U", M, K, BS)
    v = matrix_input("V", K, N, BS)
    product = u @ v
    return DAG([
        (nnz_mask(x) * sq(x - product)).node,
        sum_of(sq(product)).node,
    ])


def _inputs():
    return {
        "X": rand_sparse(M, N, 0.1, BS, seed=11),
        "U": rand_dense(M, K, BS, seed=12),
        "V": rand_dense(K, N, BS, seed=13),
    }


def _run(engine_cls, time_model, **options):
    config = make_config(time_model=time_model, **options)
    engine = engine_cls(config)
    return engine.execute(_query(), _inputs())


@pytest.mark.parametrize("engine_cls", [FuseMEEngine, SystemDSLikeEngine])
@pytest.mark.parametrize("time_model", ["aggregate", "scheduled"])
@pytest.mark.parametrize("parallelism", [1, 4])
def test_fast_path_is_invisible(engine_cls, time_model, parallelism):
    baseline = _run(
        engine_cls,
        time_model,
        plan_cache_size=0,
        slice_reuse=False,
        local_parallelism=1,
    )
    fast = _run(engine_cls, time_model, local_parallelism=parallelism)

    for root_base, root_fast in zip(baseline.dag.roots, fast.dag.roots):
        assert np.array_equal(
            baseline.outputs[root_base].to_numpy(),
            fast.outputs[root_fast].to_numpy(),
        )
    # counters differ by design; every modeled quantity must be exact
    assert baseline.metrics.totals() == fast.metrics.totals()


@pytest.mark.parametrize("engine_cls", [FuseMEEngine, SystemDSLikeEngine])
def test_repeated_execution_stays_invisible(engine_cls):
    """Iteration 2 runs the cached plan + warm slice cache: still identical."""
    engine = engine_cls(make_config())
    inputs = _inputs()
    first = engine.execute(_query(), inputs)
    second = engine.execute(_query(), inputs)
    assert first.metrics.totals() == second.metrics.totals()
    for root_a, root_b in zip(first.dag.roots, second.dag.roots):
        assert np.array_equal(
            first.outputs[root_a].to_numpy(),
            second.outputs[root_b].to_numpy(),
        )


def test_parallel_pool_counters_recorded():
    result = _run(FuseMEEngine, "aggregate", local_parallelism=4)
    assert result.metrics.counter("pool_tasks") > 0
    assert result.metrics.counter("pool_width_max") <= 4
