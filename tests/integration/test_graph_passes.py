"""The graph-pass pipeline contract suite.

Three guarantees, across all five engines:

* **bit-identity** — enabling the pass pipeline never changes any matrix
  output, in sequential and wave (parallel unit dispatch) modes alike;
* **off == seed** — with ``graph_passes="off"`` the modeled metrics are
  exactly what the engine produced before the pipeline existed;
* **the rewrites pay** — on GNMF the merged plan has strictly fewer units
  and strictly lower modeled cost than raw lowering.

Plus the serving layer's cross-query CSE: concurrent identical queries
execute once, adopted results are the owner's verbatim, and an owner
failure demotes waiters to solo execution instead of failing them.
"""

import threading
import time

import numpy as np
import pytest

from repro import (
    DistMELikeEngine,
    FuseMEEngine,
    LocalXLAEngine,
    MatFastLikeEngine,
    SystemDSLikeEngine,
)
from repro.config import EngineConfig, ServiceConfig
from repro.execution import as_dag
from repro.matrix import rand_dense, rand_sparse
from repro.serving.cse import SubplanIndex
from repro.serving.result_cache import result_key
from repro.serving.service import MatrixService
from repro.workloads.als import als_loss_query
from repro.workloads.autoencoder import AutoEncoder, AutoEncoderShapes
from repro.workloads.gnmf import gnmf_updates

from tests.conftest import make_config

BS = 20

ENGINES = [
    FuseMEEngine,
    DistMELikeEngine,
    SystemDSLikeEngine,
    MatFastLikeEngine,
    LocalXLAEngine,
]


def gnmf_query():
    q = gnmf_updates(100, 80, 20, density=0.2, block_size=BS)
    return [q.u_update, q.v_update]


def gnmf_inputs():
    return {
        "X": rand_sparse(100, 80, density=0.2, block_size=BS, seed=11),
        "U": rand_dense(20, 80, BS, seed=12, low=0.1, high=1.0),
        "V": rand_dense(100, 20, BS, seed=13, low=0.1, high=1.0),
    }


@pytest.fixture(scope="module")
def workload():
    return gnmf_query(), gnmf_inputs()


# -- golden unit counts -----------------------------------------------------


def _unit_counts(build_query):
    raw = FuseMEEngine(
        make_config(block_size=BS, graph_passes="off")
    ).lower_query(build_query())
    opt = FuseMEEngine(
        make_config(block_size=BS, graph_passes="all")
    ).lower_query(build_query())
    return len(raw.ops), len(opt.ops), opt


def test_golden_unit_counts_gnmf():
    q = gnmf_updates(100, 80, 20, density=0.1, block_size=BS)
    raw, opt, physical = _unit_counts(lambda: [q.u_update, q.v_update])
    assert (raw, opt) == (4, 2)
    # both rewrites fired and are reported on the plan
    fired = {r.name for r in physical.pass_reports if r.fired}
    assert fired == {"merge_units", "dedup_consolidations"}


def test_golden_unit_counts_als():
    query = als_loss_query(100, 80, 20, density=0.1, block_size=BS)
    raw, opt, physical = _unit_counts(lambda: query.expr)
    assert (raw, opt) == (1, 1)  # a single unit: nothing to merge
    assert all(not r.fired for r in physical.pass_reports)


def test_golden_unit_counts_autoencoder():
    ae = AutoEncoder(
        AutoEncoderShapes(features=100, hidden1=40, hidden2=20),
        batch_size=60,
        block_size=BS,
    )
    raw, opt, physical = _unit_counts(lambda: ae.step_exprs)
    assert (raw, opt) == (12, 9)
    merge = next(r for r in physical.pass_reports if r.name == "merge_units")
    # the merged-unit re-search disagrees with one member's original
    # (P,Q,R); the pass counts it instead of adopting (bit-identity)
    assert merge.pqr_changes == 1
    for op in physical.ops:
        if op.members:
            # provenance: merged units name their raw-lowering members
            assert op.sources == tuple(m.index for m in op.members)


# -- bit-identity: pass on == pass off, sequential and wave modes -----------


@pytest.mark.parametrize("parallelism", [1, 4], ids=["sequential", "wave"])
@pytest.mark.parametrize("engine_cls", ENGINES, ids=lambda c: c.name)
def test_passes_are_bit_identical(engine_cls, parallelism, workload):
    query, inputs = workload
    off = engine_cls(make_config(
        block_size=BS, graph_passes="off", local_parallelism=parallelism
    )).execute(query, inputs)
    on = engine_cls(make_config(
        block_size=BS, graph_passes="all", local_parallelism=parallelism
    )).execute(query, inputs)
    for root_off, root_on in zip(off.dag.roots, on.dag.roots):
        assert np.array_equal(
            off.outputs[root_off].to_numpy(), on.outputs[root_on].to_numpy()
        )


@pytest.mark.parametrize("engine_cls", ENGINES, ids=lambda c: c.name)
def test_off_mode_modeled_metrics_match_seed(engine_cls, workload):
    """``graph_passes="off"`` is the seed path: every modeled total equals
    a default-config run exactly (the pipeline allocates nothing)."""
    query, inputs = workload
    seed = engine_cls(make_config(block_size=BS)).execute(query, inputs)
    off = engine_cls(
        make_config(block_size=BS, graph_passes="off")
    ).execute(query, inputs)
    assert seed.metrics.totals() == off.metrics.totals()


# -- the rewrites pay -------------------------------------------------------


def test_gnmf_fewer_units_and_lower_modeled_cost(workload):
    query, inputs = workload
    off_engine = FuseMEEngine(make_config(block_size=BS, graph_passes="off"))
    on_engine = FuseMEEngine(make_config(block_size=BS, graph_passes="all"))
    off = off_engine.execute(query, inputs)
    on = on_engine.execute(query, inputs)

    raw_units = len(off_engine.lower_query(query, inputs).ops)
    opt_units = len(on_engine.lower_query(query, inputs).ops)
    assert opt_units < raw_units

    off_totals = off.metrics.totals()
    on_totals = on.metrics.totals()
    assert on_totals["consolidation_bytes"] < off_totals["consolidation_bytes"]
    assert on_totals["elapsed_seconds"] < off_totals["elapsed_seconds"]


def test_merged_unit_profiles_keep_source_provenance(workload):
    query, inputs = workload
    engine = FuseMEEngine(make_config(block_size=BS, graph_passes="all"))
    profile = engine.profile(query, inputs)
    merged = [u for u in profile.units if u.kind == "merged"]
    assert merged, "GNMF should produce at least one merged unit"
    for unit in merged:
        assert len(unit.sources) > 1  # raw lowering indices, joinable
        assert f"<-{','.join(str(s) for s in unit.sources)}" in profile.render()


# -- configuration and caching ----------------------------------------------


def test_invalid_pass_name_rejected():
    with pytest.raises(ValueError):
        EngineConfig(graph_passes="merge_units,frobnicate")


def test_pass_spec_in_planning_signature():
    on = FuseMEEngine(make_config(block_size=BS, graph_passes="all"))
    off = FuseMEEngine(make_config(block_size=BS, graph_passes="off"))
    assert on.planning_signature() != off.planning_signature()


def test_plan_cache_stores_optimized_plan(workload):
    query, inputs = workload
    engine = FuseMEEngine(make_config(block_size=BS, graph_passes="all"))
    first = engine.lower_query(query, inputs)
    again = engine.lower_query(query, inputs)  # served from the plan cache
    assert again is first
    assert any(op.members for op in again.ops)
    assert engine.plan_cache.stats()["hits"] >= 1


# -- visualization ----------------------------------------------------------


def test_visualize_mermaid_and_dot(workload):
    query, inputs = workload
    engine = FuseMEEngine(make_config(block_size=BS, graph_passes="all"))
    physical = engine.lower_query(query, inputs)
    mermaid = physical.visualize()
    assert mermaid.startswith("flowchart TD")
    assert "subgraph" in mermaid and "class " in mermaid  # merged highlight
    assert "shared" in mermaid  # deduplicated consolidation edges
    dot = physical.visualize(fmt="dot")
    assert dot.startswith("digraph") and "->" in dot
    with pytest.raises(ValueError):
        physical.visualize(fmt="png")


# -- cross-query CSE --------------------------------------------------------


def _serving_pieces():
    engine = FuseMEEngine(make_config(block_size=BS))
    service = MatrixService(engine, ServiceConfig(cross_query_cse=True))
    return service


def test_cse_waiter_adopts_owner_result():
    query, inputs = gnmf_query(), gnmf_inputs()
    with _serving_pieces() as service:
        session = service.open_session("alice")
        for name, matrix in inputs.items():
            session.bind(name, matrix)
        key = result_key(
            service.engine.planning_signature(), as_dag(query), inputs
        )
        lease = service.pool.subplans.lease(key)
        assert lease.owner
        ticket = session.submit(query)
        for _ in range(500):  # dispatcher picks the ticket up, then waits
            if service.pool.running:
                break
            time.sleep(0.01)
        expected = FuseMEEngine(make_config(block_size=BS)).execute(
            query, inputs
        )
        service.pool.subplans.complete(key, expected)
        served = ticket.result(timeout=30)
        assert served.result is expected  # adopted verbatim
        stats = service.pool.subplans.stats()
        assert stats["hits"] == 1
        assert service.pool.replicas[0].cse_hits == 1
        assert service.status()["cse"]["hits"] == 1
        assert "repro_serving_cse_hits_total 1" in service.prometheus()


def test_cse_owner_failure_demotes_waiter_to_solo():
    query, inputs = gnmf_query(), gnmf_inputs()
    with _serving_pieces() as service:
        session = service.open_session("bob")
        for name, matrix in inputs.items():
            session.bind(name, matrix)
        key = result_key(
            service.engine.planning_signature(), as_dag(query), inputs
        )
        lease = service.pool.subplans.lease(key)
        ticket = session.submit(query)
        for _ in range(500):
            if service.pool.running:
                break
            time.sleep(0.01)
        service.pool.subplans.fail(key)
        served = ticket.result(timeout=60)  # executed solo, not failed
        baseline = FuseMEEngine(make_config(block_size=BS)).execute(
            query, inputs
        )
        for root_s, root_b in zip(served.result.dag.roots, baseline.dag.roots):
            assert np.array_equal(
                served.result.outputs[root_s].to_numpy(),
                baseline.outputs[root_b].to_numpy(),
            )
        stats = service.pool.subplans.stats()
        assert stats["fallbacks"] == 1 and stats["hits"] == 0


def test_cse_results_identical_vs_disabled():
    """A two-tenant replay of the same query produces identical per-query
    outputs with CSE on and off."""
    query, inputs = gnmf_query(), gnmf_inputs()

    def replay(cse: bool):
        engine = FuseMEEngine(make_config(block_size=BS))
        outputs = {}
        with MatrixService(
            engine, ServiceConfig(cross_query_cse=cse)
        ) as service:
            for tenant in ("alice", "bob"):
                session = service.open_session(tenant)
                for name, matrix in inputs.items():
                    session.bind(name, matrix)
                served = session.execute(query, timeout=60)
                outputs[tenant] = [
                    served.result.outputs[root].to_numpy()
                    for root in served.result.dag.roots
                ]
        return outputs

    on, off = replay(True), replay(False)
    for tenant in ("alice", "bob"):
        for a, b in zip(on[tenant], off[tenant]):
            assert np.array_equal(a, b)


def test_subplan_index_disabled_is_inert():
    index = SubplanIndex(enabled=False)
    lease = index.lease("k")
    assert lease.owner
    index.complete("k", object())
    assert index.stats() == {
        "enabled": False, "hits": 0, "executed": 0,
        "failures": 0, "fallbacks": 0, "inflight": 0,
    }


def test_subplan_index_concurrent_waiters():
    index = SubplanIndex()
    owner = index.lease("k")
    assert owner.owner
    results = []

    def wait():
        results.append(index.lease("k").wait(timeout=10))

    threads = [threading.Thread(target=wait) for _ in range(3)]
    for t in threads:
        t.start()
    time.sleep(0.05)
    index.complete("k", "payload")
    for t in threads:
        t.join()
    assert results == ["payload"] * 3
    assert index.stats()["hits"] == 3
    assert index.stats()["inflight"] == 0
