"""Equivalence + fault suite for the process execution backend.

The contract under test (DESIGN.md §12): with
``EngineConfig(execution_backend="process")`` every engine produces
**bit-identical outputs** and **unchanged modeled totals** versus its
sequential thread-backend run — and failures (worker crashes, ineligible
configurations) demote to the thread backend with a RuntimeWarning, never
a wrong answer.
"""

import warnings

import pytest

import repro.core.procexec as procexec
from repro import (
    DistMELikeEngine,
    FuseMEEngine,
    LocalXLAEngine,
    MatFastLikeEngine,
    SystemDSLikeEngine,
)
from repro.cluster.procpool.testing import crash_task
from repro.matrix import rand_dense, rand_sparse
from repro.workloads.gnmf import gnmf_updates

from tests.conftest import make_config

BS = 20

ENGINES = [
    FuseMEEngine,
    DistMELikeEngine,
    SystemDSLikeEngine,
    MatFastLikeEngine,
    LocalXLAEngine,
]


@pytest.fixture(scope="module")
def workload():
    """The two-root GNMF update: two independent unit chains per query."""
    q = gnmf_updates(100, 80, 20, density=0.2, block_size=BS)
    inputs = {
        "X": rand_sparse(100, 80, density=0.2, block_size=BS, seed=11),
        "U": rand_dense(20, 80, BS, seed=12, low=0.1, high=1.0),
        "V": rand_dense(100, 20, BS, seed=13, low=0.1, high=1.0),
    }
    return [q.u_update, q.v_update], inputs


def _run_process_backend(engine_cls, query, inputs, **options):
    engine = engine_cls(make_config(
        block_size=BS,
        local_parallelism=2,
        execution_backend="process",
        **options,
    ))
    try:
        result = engine.execute(query, inputs)
    finally:
        close = getattr(engine, "close", None)
        if close is not None:
            close()
    return engine, result


def _assert_equivalent(sequential, processed):
    for root_s, root_p in zip(sequential.dag.roots, processed.dag.roots):
        a = sequential.outputs[root_s].to_numpy()
        b = processed.outputs[root_p].to_numpy()
        assert a.tobytes() == b.tobytes(), "outputs are not bit-identical"
    assert sequential.metrics.totals() == processed.metrics.totals()


@pytest.mark.parametrize("engine_cls", ENGINES, ids=lambda c: c.name)
def test_process_backend_matches_sequential(engine_cls, workload):
    query, inputs = workload
    sequential = engine_cls(make_config(block_size=BS)).execute(query, inputs)
    with warnings.catch_warnings():
        # any demotion warning means the process path did NOT run: fail loud
        warnings.simplefilter("error", RuntimeWarning)
        _, processed = _run_process_backend(engine_cls, query, inputs)
    _assert_equivalent(sequential, processed)


def test_process_backend_reuses_pool_across_executes(workload):
    query, inputs = workload
    engine = FuseMEEngine(make_config(
        block_size=BS, local_parallelism=2, execution_backend="process"
    ))
    try:
        first = engine.execute(query, inputs)
        pool = engine._procpool
        assert pool is not None and pool.started
        second = engine.execute(query, inputs)
        assert engine._procpool is pool  # persistent, not per-query
        assert pool.stats.batches >= 2
        _assert_equivalent(first, second)
    finally:
        engine.close()
    assert pool.closed


def test_worker_crash_falls_back_to_threads(workload, monkeypatch):
    """Respawn budget exhausted -> PoolBrokenError -> thread fallback.

    Every dispatched task kills its worker, so the pool must break and the
    scheduler must rerun the units driver-side: same outputs, same modeled
    totals, plus a warning and a fallback counter — never a wrong answer.
    """
    query, inputs = workload
    sequential = FuseMEEngine(make_config(block_size=BS)).execute(query, inputs)
    monkeypatch.setattr(procexec, "_UNIT_TASK_FN", crash_task)
    with pytest.warns(RuntimeWarning, match="falling back to threads"):
        engine, processed = _run_process_backend(FuseMEEngine, query, inputs)
    _assert_equivalent(sequential, processed)
    assert processed.metrics.counters.get("procpool_fallbacks", 0) >= 1
    # the next execute must not try the broken pool again
    monkeypatch.undo()


def test_unit_error_surfaces_like_serial(workload):
    """A real in-unit failure (simulated O.O.M.) raises on the driver with
    the same exception type the sequential run would produce — worker-side
    unit errors are *unit* semantics, not infrastructure failures."""
    from repro.errors import TaskOutOfMemoryError

    query, inputs = workload
    with pytest.raises(TaskOutOfMemoryError):
        FuseMEEngine(
            make_config(block_size=BS, task_memory_budget=1024)
        ).execute(query, inputs)
    engine = FuseMEEngine(make_config(
        block_size=BS,
        task_memory_budget=1024,
        local_parallelism=2,
        execution_backend="process",
    ))
    try:
        with pytest.raises(TaskOutOfMemoryError):
            engine.execute(query, inputs)
    finally:
        engine.close()


def test_unpicklable_task_breaks_pool_and_falls_back(workload, monkeypatch):
    """A task fn that cannot be pickled must not hang the dispatch loop: the
    pool breaks synchronously and the wave reruns on the thread backend."""
    query, inputs = workload
    sequential = FuseMEEngine(make_config(block_size=BS)).execute(query, inputs)
    monkeypatch.setattr(
        procexec, "_UNIT_TASK_FN", lambda task: None  # closures don't pickle
    )
    with pytest.warns(RuntimeWarning, match="falling back to threads"):
        _, processed = _run_process_backend(FuseMEEngine, query, inputs)
    _assert_equivalent(sequential, processed)


def test_scheduled_time_model_demotes_to_threads(workload):
    """The per-slot runtime is cluster-global state workers cannot
    reproduce, so the process backend must refuse it (with a warning) and
    the thread path must still produce the scheduled-model numbers."""
    query, inputs = workload
    sequential = FuseMEEngine(
        make_config(block_size=BS, time_model="scheduled")
    ).execute(query, inputs)
    with pytest.warns(RuntimeWarning, match='time_model="aggregate"'):
        engine, processed = _run_process_backend(
            FuseMEEngine, query, inputs, time_model="scheduled"
        )
    assert engine._procpool is None  # never even built a pool
    _assert_equivalent(sequential, processed)


def test_service_close_shuts_pool_down(workload):
    from repro.serving import MatrixService

    query, inputs = workload
    engine = FuseMEEngine(make_config(
        block_size=BS, local_parallelism=2, execution_backend="process"
    ))
    service = MatrixService(engine)
    session = service.open_session("tenant-a")
    result = service.submit(session, query, inputs).result()
    assert result is not None
    pool = engine._procpool
    assert pool is not None and pool.started
    service.close()
    assert pool.closed


def test_config_rejects_unknown_backend():
    with pytest.raises(ValueError, match="execution_backend"):
        make_config(execution_backend="gpu")
