"""Serving must be invisible in results and modeled metrics.

The acceptance bar for the serving layer: a scripted 3-tenant, 20-query
replay through :class:`MatrixService` — interleaved through admission
control and fair scheduling on one shared engine + cluster — produces
bit-identical outputs and identical modeled per-query seconds/bytes to
running every query standalone through ``engine.execute()`` on a fresh
engine.  Only wall-clock timing and observability counters may differ.
"""

import numpy as np
import pytest

from repro import FuseMEEngine, MatrixService, ServiceConfig
from repro.blocks.block import Block
from repro.errors import ServiceOverloadedError
from repro.lang import DAG, matrix_input, nnz_mask, sq, sum_of
from repro.matrix import rand_dense, rand_sparse

from tests.conftest import make_config

BS = 25


def nmf_query():
    """alice: GNMF-style two-root residual query."""
    x = matrix_input("X", 100, 75, BS, density=0.1)
    u = matrix_input("U", 100, 25, BS)
    v = matrix_input("V", 25, 75, BS)
    product = u @ v
    return DAG([
        (nnz_mask(x) * sq(x - product)).node,
        sum_of(sq(product)).node,
    ])


def pagerank_query():
    """bob: one damped power-iteration step."""
    a = matrix_input("A", 100, 100, BS, density=0.05)
    r = matrix_input("R", 100, 1, BS)
    return (a @ r) * 0.85 + 0.15 / 100


def gram_query():
    """carol: scalar norm of a product."""
    c = matrix_input("C", 75, 50, BS)
    d = matrix_input("D", 50, 75, BS)
    return sum_of(sq(c @ d))


WORKLOADS = {
    "alice": (nmf_query, lambda: {
        "X": rand_sparse(100, 75, 0.1, BS, seed=11),
        "U": rand_dense(100, 25, BS, seed=12),
        "V": rand_dense(25, 75, BS, seed=13),
    }),
    "bob": (pagerank_query, lambda: {
        "A": rand_sparse(100, 100, 0.05, BS, seed=21),
        "R": rand_dense(100, 1, BS, seed=22),
    }),
    "carol": (gram_query, lambda: {
        "C": rand_dense(75, 50, BS, seed=31),
        "D": rand_dense(50, 75, BS, seed=32),
    }),
}

#: 20 queries: alice 7, bob 7, carol 6 — interleaved.
SCHEDULE = (["alice", "bob", "carol"] * 7)[:20]


def assert_same_execution(served, reference):
    """Bit-identical outputs + identical modeled totals."""
    assert len(served.result.dag.roots) == len(reference.dag.roots)
    for index in range(len(reference.dag.roots)):
        assert np.array_equal(
            served.output(index).to_numpy(),
            reference.output(index).to_numpy(),
        )
    assert served.metrics.totals() == reference.metrics.totals()


class TestReplayDeterminism:
    def test_twenty_query_replay_matches_standalone(self):
        # Standalone references: a fresh engine per tenant, every fast path
        # at defaults — exactly what a single-tenant user would observe.
        references = {
            tenant: FuseMEEngine(make_config()).execute(make_query(), make_inputs())
            for tenant, (make_query, make_inputs) in WORKLOADS.items()
        }

        # Result cache off so all 20 queries genuinely execute on the one
        # shared cluster; plan/slice caches stay warm across tenants.
        service = MatrixService(
            engine=FuseMEEngine(make_config()),
            config=ServiceConfig(result_cache_entries=0),
        )
        with service:
            sessions = {
                tenant: service.open_session(tenant).bind_many(make_inputs())
                for tenant, (_, make_inputs) in WORKLOADS.items()
            }
            tickets = [
                sessions[tenant].submit(WORKLOADS[tenant][0]())
                for tenant in SCHEDULE
            ]
            served = [t.result(timeout=120.0) for t in tickets]

        for tenant, result in zip(SCHEDULE, served):
            assert result.tenant == tenant
            assert not result.from_cache
            assert_same_execution(result, references[tenant])

        # Per-query deltas add back up to the shared cluster's own totals.
        assert (
            sum(r.metrics.num_stages for r in served)
            == service.cluster.metrics.num_stages
        )
        assert sum(r.metrics.comm_bytes for r in served) == pytest.approx(
            service.cluster.metrics.comm_bytes
        )
        status = service.status()
        assert status["served"] == 20
        assert {name for name in status["tenants"]} == set(WORKLOADS)


class TestClosedLoop:
    def test_repeats_hit_the_result_cache(self):
        with MatrixService(engine=FuseMEEngine(make_config())) as service:
            results = []
            for tenant, (make_query, make_inputs) in WORKLOADS.items():
                session = service.open_session(tenant).bind_many(make_inputs())
                for _ in range(3):
                    results.append(session.execute(make_query(), timeout=120.0))
            status = service.status()

        by_tenant = {}
        for result in results:
            by_tenant.setdefault(result.tenant, []).append(result)
        for tenant, runs in by_tenant.items():
            assert not runs[0].from_cache
            assert runs[1].from_cache and runs[2].from_cache
            for repeat in runs[1:]:
                assert_same_execution(repeat, runs[0].result)

        assert status["served"] == 9
        assert status["cache_hits"] == 6
        assert status["result_cache"]["hits"] == 6
        assert status["latency"]["count"] == 9
        assert status["queue_depth"] == 0 and status["running"] == 0

    def test_rebinding_invalidates_served_results(self):
        """set_block on a bound matrix must serve fresh bits, not the cache."""
        x = rand_dense(50, 50, BS, seed=41)
        query = matrix_input("X", 50, 50, BS) * 2.0
        with MatrixService(engine=FuseMEEngine(make_config())) as service:
            alice = service.open_session("alice").bind("X", x)
            before = alice.execute(query, timeout=120.0)
            x.set_block(0, 0, Block(np.full((BS, BS), 7.0)))
            after = alice.execute(query, timeout=120.0)

        assert not after.from_cache
        assert not np.array_equal(
            before.output(0).to_numpy(), after.output(0).to_numpy()
        )
        reference = FuseMEEngine(make_config()).execute(query, {"X": x})
        assert np.array_equal(
            after.output(0).to_numpy(), reference.output(0).to_numpy()
        )

        # binding a brand-new matrix likewise misses
        y = rand_dense(50, 50, BS, seed=42)
        with MatrixService(engine=FuseMEEngine(make_config())) as service:
            bob = service.open_session("bob").bind("X", x)
            first = bob.execute(query, timeout=120.0)
            bob.bind("X", y)
            fresh = bob.execute(query, timeout=120.0)
        assert not first.from_cache and not fresh.from_cache
        assert bob.num_rebinds == 1


class TestAdmissionEndToEnd:
    def test_over_budget_query_never_starts(self):
        service = MatrixService(
            engine=FuseMEEngine(make_config()),
            config=ServiceConfig(memory_budget_bytes=1024),
        )
        with service:
            make_query, make_inputs = WORKLOADS["alice"]
            alice = service.open_session("alice").bind_many(make_inputs())
            with pytest.raises(ServiceOverloadedError, match="memory budget"):
                alice.submit(make_query())
        # shed pre-admission: the shared cluster never ran a stage
        assert service.cluster.metrics.num_stages == 0
        assert service.status()["shed"] == 1
