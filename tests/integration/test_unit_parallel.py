"""Equivalence suite: parallel unit dispatch == sequential execution.

The dependency-driven scheduler (``repro.core.physical.run_physical_plan``)
dispatches independent units concurrently when ``local_parallelism > 1``.
These tests assert the contract that makes that safe to enable anywhere:
across all five engines, outputs are bit-identical and every modeled total
(seconds, bytes, flops, stages) is unchanged at any parallelism level.
"""

import numpy as np
import pytest

from repro import (
    DistMELikeEngine,
    FuseMEEngine,
    LocalXLAEngine,
    MatFastLikeEngine,
    SystemDSLikeEngine,
)
from repro.workloads.gnmf import gnmf_updates

from tests.conftest import make_config

BS = 20

ENGINES = [
    FuseMEEngine,
    DistMELikeEngine,
    SystemDSLikeEngine,
    MatFastLikeEngine,
    LocalXLAEngine,
]


@pytest.fixture(scope="module")
def workload():
    """The two-root GNMF update: two independent unit chains per query."""
    from repro.matrix import rand_dense, rand_sparse

    q = gnmf_updates(100, 80, 20, density=0.2, block_size=BS)
    inputs = {
        "X": rand_sparse(100, 80, density=0.2, block_size=BS, seed=11),
        "U": rand_dense(20, 80, BS, seed=12, low=0.1, high=1.0),
        "V": rand_dense(100, 20, BS, seed=13, low=0.1, high=1.0),
    }
    return [q.u_update, q.v_update], inputs


@pytest.mark.parametrize("engine_cls", ENGINES, ids=lambda c: c.name)
def test_parallel_dispatch_is_bit_identical(engine_cls, workload):
    query, inputs = workload
    sequential = engine_cls(make_config(block_size=BS)).execute(query, inputs)
    concurrent = engine_cls(
        make_config(block_size=BS, local_parallelism=4)
    ).execute(query, inputs)

    roots_s = list(sequential.dag.roots)
    roots_c = list(concurrent.dag.roots)
    for root_s, root_c in zip(roots_s, roots_c):
        a = sequential.outputs[root_s].to_numpy()
        b = concurrent.outputs[root_c].to_numpy()
        assert np.array_equal(a, b), "outputs must be bit-identical"

    assert sequential.metrics.totals() == concurrent.metrics.totals()


@pytest.mark.parametrize("engine_cls", ENGINES[:4], ids=lambda c: c.name)
def test_stage_multiset_is_identical(engine_cls, workload):
    """Concurrent dispatch may reorder stage records between independent
    units but never changes the stages themselves: same names, same
    per-stage modeled numbers, as a multiset."""
    query, inputs = workload

    def stage_multiset(result):
        return sorted(
            (s.name, s.num_tasks, s.comm_bytes, s.flops, round(s.seconds, 12))
            for s in result.metrics
        )

    sequential = engine_cls(make_config(block_size=BS)).execute(query, inputs)
    concurrent = engine_cls(
        make_config(block_size=BS, local_parallelism=4)
    ).execute(query, inputs)
    assert stage_multiset(sequential) == stage_multiset(concurrent)


def test_concurrent_dispatch_actually_overlaps(workload):
    """With parallelism the scheduler runs dependency waves, and the GNMF
    DAG's wave 0 holds two independent units (observability counters)."""
    query, inputs = workload
    result = FuseMEEngine(
        make_config(block_size=BS, local_parallelism=4)
    ).execute(query, inputs)
    assert result.metrics.counter("unit_waves") == 2
    assert result.metrics.counter("unit_wave_width_max") == 2
    assert result.metrics.counter("unit_pool_batches") >= 1


def test_sequential_mode_runs_fusion_plan_order(workload):
    """parallelism<=1 keeps the exact pre-IR stage record order (the
    sequential-equivalent contract)."""
    query, inputs = workload
    result = FuseMEEngine(make_config(block_size=BS)).execute(query, inputs)
    units = [s.unit for s in result.metrics if s.unit is not None]
    assert units == sorted(units), "stages must appear in unit order"
    assert result.metrics.counter("unit_waves") == 0


def test_per_unit_metrics_attribution(workload):
    """Every stage of a physical-plan run is attributed to its unit, and
    per-unit totals sum back to the query totals."""
    query, inputs = workload
    result = FuseMEEngine(
        make_config(block_size=BS, local_parallelism=4)
    ).execute(query, inputs)
    per_unit = result.metrics.per_unit_totals()
    assert set(per_unit) == {0, 1, 2, 3}
    assert sum(u["comm_bytes"] for u in per_unit.values()) == (
        result.metrics.comm_bytes
    )
    assert sum(u["num_stages"] for u in per_unit.values()) == (
        result.metrics.num_stages
    )


def test_intermediates_released_at_last_consumer(workload):
    """The lifetime model frees dead env keys (observability counter) while
    leaving results intact."""
    query, inputs = workload
    result = FuseMEEngine(make_config(block_size=BS)).execute(query, inputs)
    # 2 intermediates + 3 inputs die before end-of-query
    assert result.metrics.counter("env_keys_released") == 5
    assert result.output(0).shape == (20, 80)
    assert result.output(1).shape == (100, 20)


def test_scheduled_time_model_equivalence(workload):
    """The contract holds under the event-driven runtime too."""
    query, inputs = workload
    sequential = FuseMEEngine(
        make_config(block_size=BS, time_model="scheduled")
    ).execute(query, inputs)
    concurrent = FuseMEEngine(
        make_config(block_size=BS, time_model="scheduled", local_parallelism=4)
    ).execute(query, inputs)
    assert sequential.metrics.totals() == concurrent.metrics.totals()
    for root_s, root_c in zip(sequential.dag.roots, concurrent.dag.roots):
        assert np.array_equal(
            sequential.outputs[root_s].to_numpy(),
            concurrent.outputs[root_c].to_numpy(),
        )
