"""The scale-out determinism contract, across all five engines.

Any query's output and modeled metrics must be bit-identical whether it
is served by 1 replica or N — and identical to running it standalone
through ``engine.execute()``.  Only wall-clock timing and per-replica
counters may differ.  The result cache is disabled so every path truly
executes.
"""

import numpy as np
import pytest

from repro import (
    DistMELikeEngine,
    FuseMEEngine,
    LocalXLAEngine,
    MatFastLikeEngine,
    SystemDSLikeEngine,
)
from repro.config import ServiceConfig
from repro.lang import matrix_input
from repro.matrix import rand_dense, rand_sparse
from repro.serving import MatrixService

from tests.conftest import make_config

BS = 25

ENGINES = [
    FuseMEEngine,
    DistMELikeEngine,
    SystemDSLikeEngine,
    MatFastLikeEngine,
    LocalXLAEngine,
]

QUERY = (
    matrix_input("X", 75, 50, BS, density=0.2)
    @ matrix_input("W", 50, 50, BS)
) * 2.0

#: tenant -> bound inputs; distinct seeds so outputs differ per tenant.
TENANTS = {
    f"tenant-{i}": {
        "X": rand_sparse(75, 50, density=0.2, block_size=BS, seed=100 + i),
        "W": rand_dense(50, 50, BS, seed=200 + i),
    }
    for i in range(5)
}


def replay(engine_cls, num_replicas):
    """Serve every tenant's query through a pool of *num_replicas*."""
    service = MatrixService(
        engine_cls(make_config()),
        ServiceConfig(
            num_replicas=num_replicas,
            result_cache_entries=0,
            dispatch_poll_seconds=0.005,
        ),
    )
    outcomes = {}
    try:
        for tenant, inputs in TENANTS.items():
            session = service.open_session(tenant).bind_many(inputs)
            served = session.execute(QUERY, timeout=60.0)
            outcomes[tenant] = (
                served.output().to_numpy(),
                served.metrics.totals(),
                served.replica,
            )
    finally:
        service.close()
    return outcomes


@pytest.mark.parametrize("engine_cls", ENGINES, ids=lambda c: c.name)
def test_one_vs_n_replicas_is_bit_identical(engine_cls):
    # standalone references, one fresh engine per tenant
    references = {}
    for tenant, inputs in TENANTS.items():
        result = engine_cls(make_config()).execute(QUERY, inputs)
        references[tenant] = (
            result.output(0).to_numpy(), result.metrics.totals()
        )

    single = replay(engine_cls, num_replicas=1)
    pooled = replay(engine_cls, num_replicas=3)

    for tenant in TENANTS:
        ref_out, ref_totals = references[tenant]
        for label, outcomes in (("1 replica", single), ("3 replicas", pooled)):
            out, totals, _ = outcomes[tenant]
            np.testing.assert_array_equal(
                out, ref_out,
                err_msg=f"{tenant} via {label}: output drifted",
            )
            assert totals == ref_totals, (
                f"{tenant} via {label}: modeled metrics drifted"
            )

    # the pooled run actually exercised more than one replica
    assert len({outcome[2] for outcome in pooled.values()}) > 1
