"""The service observability plane, end to end (DESIGN.md §16).

Four contracts:

* **cross-process trace propagation** — on the process execution backend,
  a GNMF query's span tree carries a worker-side span (pid, kernel clock,
  shared-memory traffic) for every unit dispatched to the pool, and
  ``UnitProfile.measured_wall_seconds`` comes from the worker's own clock;
* **strictly observational** — accounting + SLO tracking enabled change
  neither outputs (bit-identical) nor modeled metrics;
* **conservation** — per-tenant ledgers sum exactly to the cluster-level
  :class:`~repro.cluster.metrics.MetricsCollector` totals, and CSE
  adoption redistributes charges without creating or destroying cost;
* **alerting** — an induced latency regression flips the burn-rate alert
  on the bus, in ``status()["slo"]``, and on a real HTTP ``/metrics``
  scrape.
"""

import json
import os
import time
import urllib.error
import urllib.request
import warnings

import pytest

import repro.core.procexec as procexec
from repro import FuseMEEngine, MatrixService, ServiceConfig
from repro.cluster.procpool.testing import crash_task
from repro.execution import as_dag
from repro.lang import matrix_input, sq, sum_of
from repro.matrix import rand_dense, rand_sparse
from repro.obs import MemorySink, SLOSpec
from repro.obs.accounting import RESOURCE_FIELDS
from repro.obs.prometheus import validate_exposition
from repro.serving.result_cache import result_key
from repro.workloads.gnmf import gnmf_updates

from tests.conftest import make_config

BS = 20


@pytest.fixture(scope="module")
def workload():
    q = gnmf_updates(100, 80, 20, density=0.2, block_size=BS)
    inputs = {
        "X": rand_sparse(100, 80, density=0.2, block_size=BS, seed=11),
        "U": rand_dense(20, 80, BS, seed=12, low=0.1, high=1.0),
        "V": rand_dense(100, 20, BS, seed=13, low=0.1, high=1.0),
    }
    return [q.u_update, q.v_update], inputs


def tenant_query(seed: int):
    """A per-tenant query whose shape depends on *seed* (no cross-tenant
    result-cache or CSE sharing)."""
    rows = 60 + 5 * seed
    a = matrix_input("A", rows, 40, BS)
    b = matrix_input("B", 40, rows, BS)
    query = sum_of(sq(a @ b))
    inputs = {
        "A": rand_dense(rows, 40, BS, seed=seed),
        "B": rand_dense(40, rows, BS, seed=seed + 100),
    }
    return query, inputs


def wait_for_running(service, deadline=5.0):
    for _ in range(int(deadline / 0.01)):
        if service.pool.running:
            return
        time.sleep(0.01)
    raise AssertionError("dispatcher never picked the ticket up")


# -- cross-process trace propagation ----------------------------------------


class TestWorkerSpans:
    def test_process_backend_spans_carry_worker_pids(self, workload):
        query, inputs = workload
        engine = FuseMEEngine(make_config(
            block_size=BS, local_parallelism=2, execution_backend="process",
        ))
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("error", RuntimeWarning)
                profile = engine.profile(query, inputs)
        finally:
            engine.close()

        worker_spans = [
            s for s in profile.span.walk() if s.category == "worker"
        ]
        # the two-root GNMF update dispatches multi-unit waves to the pool
        assert len(worker_spans) >= 2
        driver_pid = os.getpid()
        for span in worker_spans:
            assert span.attrs["pid"] > 0
            assert span.attrs["pid"] != driver_pid
            assert span.attrs["kernel_seconds"] >= 0.0
            assert span.attrs["shm_read_bytes"] > 0
            assert span.attrs["shm_write_bytes"] > 0

    def test_worker_span_anchored_inside_unit_dispatch_window(self, workload):
        query, inputs = workload
        engine = FuseMEEngine(make_config(
            block_size=BS, local_parallelism=2, execution_backend="process",
        ))
        try:
            profile = engine.profile(query, inputs)
        finally:
            engine.close()
        by_index = {u.index: u for u in profile.units}
        seen = 0
        for unit_span in profile.span.walk():
            if unit_span.category != "unit":
                continue
            workers = [c for c in unit_span.children if c.category == "worker"]
            if not workers:
                continue
            seen += 1
            (worker,) = workers
            assert worker.wall_start >= unit_span.wall_start
            assert worker.wall_end <= unit_span.wall_end
            # measured_wall_seconds comes from the worker's clock, which is
            # exactly the duration the grafted child span covers
            index = int(unit_span.name[len("unit["):-1])
            measured = by_index[index].measured_wall_seconds
            assert measured is not None and measured > 0.0
            assert worker.wall_seconds == pytest.approx(measured, abs=1e-9)
        assert seen >= 2

    def test_thread_backend_has_no_worker_spans(self, workload):
        query, inputs = workload
        profile = FuseMEEngine(make_config(block_size=BS)).profile(
            query, inputs
        )
        assert not [
            s for s in profile.span.walk() if s.category == "worker"
        ]

    def test_fallback_event_names_worker_pid_and_task(
        self, workload, monkeypatch
    ):
        query, inputs = workload
        engine = FuseMEEngine(make_config(
            block_size=BS, local_parallelism=2, execution_backend="process",
        ))
        sink = engine.telemetry.attach(MemorySink())
        monkeypatch.setattr(procexec, "_UNIT_TASK_FN", crash_task)
        try:
            with pytest.warns(RuntimeWarning, match="falling back"):
                engine.execute(query, inputs)
        finally:
            engine.close()
        events = sink.named("procpool.fallback")
        assert events
        attrs = events[0].attrs
        assert attrs["engine"] == "FuseME"
        assert "died" in attrs["reason"]
        assert attrs["worker_pid"] > 0
        assert attrs["worker_pid"] != os.getpid()
        assert attrs["task"]  # the demoted unit's label


# -- the plane is strictly observational ------------------------------------


class TestObservational:
    def test_plane_enabled_is_bit_identical(self, workload):
        query, inputs = workload
        baseline = FuseMEEngine(make_config(block_size=BS)).execute(
            query, inputs
        )

        config = ServiceConfig(
            accounting=True,
            slos=(SLOSpec(tenant="alice", latency_target_s=30.0),),
        )
        engine = FuseMEEngine(make_config(block_size=BS))
        engine.telemetry.attach(MemorySink())
        with MatrixService(engine, config) as service:
            session = service.open_session("alice")
            for name, matrix in inputs.items():
                session.bind(name, matrix)
            served = session.execute(query, timeout=60)

        for root_b, root_s in zip(
            baseline.dag.roots, served.result.dag.roots
        ):
            assert (
                baseline.outputs[root_b].to_numpy().tobytes()
                == served.result.outputs[root_s].to_numpy().tobytes()
            )
        assert baseline.metrics.totals() == served.result.metrics.totals()


# -- conservation: ledgers vs cluster totals --------------------------------


class TestConservation:
    def test_three_tenant_ledgers_sum_to_cluster_totals(self):
        """With CSE off, every tenant's raw usage is exactly the modeled
        resources of the executions run for it — so summed over tenants
        the ledgers reproduce the cluster-level MetricsCollector totals."""
        config = ServiceConfig(accounting=True, num_replicas=2)
        engine = FuseMEEngine(make_config(block_size=BS))
        with MatrixService(engine, config) as service:
            for i, tenant in enumerate(("alice", "bob", "carol")):
                query, inputs = tenant_query(i)
                session = service.open_session(tenant)
                for name, matrix in inputs.items():
                    session.bind(name, matrix)
                first = session.execute(query, timeout=60)
                again = session.execute(query, timeout=60)  # cache hit
                assert not first.from_cache and again.from_cache
            snap = service.accountant.snapshot()
            clusters = {
                id(r.cluster): r.cluster for r in service.pool.replicas
            }.values()

        usage_seconds = sum(
            t["usage"]["modeled_seconds"] for t in snap["tenants"].values()
        )
        usage_bytes = sum(
            t["usage"]["shuffled_bytes"] for t in snap["tenants"].values()
        )
        usage_flops = sum(
            t["usage"]["flops"] for t in snap["tenants"].values()
        )
        assert usage_seconds == pytest.approx(
            sum(c.metrics.elapsed_seconds for c in clusters)
        )
        assert usage_bytes == sum(c.metrics.comm_bytes for c in clusters)
        assert usage_flops == sum(c.metrics.flops for c in clusters)
        # charged == usage per dimension (nothing created or destroyed)
        totals = snap["totals"]
        for name in RESOURCE_FIELDS:
            assert totals["charged"][name] == pytest.approx(
                totals["usage"][name]
            )
        # cache hits were counted but charged no usage
        assert totals["cache_hits"] == 3 and totals["served"] == 6

    def test_cse_adoption_charges_share_to_adopter(self, workload):
        """An adopted in-flight result moves ``cse_adopter_cost_share`` of
        the owner's charged cost onto the adopter's ledger."""
        query, inputs = workload
        config = ServiceConfig(
            cross_query_cse=True,
            result_cache_entries=0,  # force bob through the CSE index
            accounting=True,
            cse_adopter_cost_share=0.5,
        )
        engine = FuseMEEngine(make_config(block_size=BS))
        with MatrixService(engine, config) as service:
            alice = service.open_session("alice")
            for name, matrix in inputs.items():
                alice.bind(name, matrix)
            owned = alice.execute(query, timeout=60)
            alice_usage = service.accountant.snapshot()["tenants"]["alice"]
            modeled = alice_usage["usage"]["modeled_seconds"]
            assert modeled > 0.0

            key = result_key(
                service.engine.planning_signature(), as_dag(query), inputs
            )
            lease = service.pool.subplans.lease(key, "alice")
            assert lease.owner
            bob = service.open_session("bob")
            for name, matrix in inputs.items():
                bob.bind(name, matrix)
            ticket = bob.submit(query)
            wait_for_running(service)
            service.pool.subplans.complete(
                key, owned.result,
                usage={"modeled_seconds": modeled},
            )
            served = ticket.result(timeout=30)
            assert served.result is owned.result  # adopted verbatim

            tenants = service.accountant.snapshot()["tenants"]
            assert tenants["bob"]["cse_adoptions"] == 1
            assert tenants["bob"]["usage"]["modeled_seconds"] == 0.0
            assert tenants["bob"]["charged"]["modeled_seconds"] == (
                pytest.approx(0.5 * modeled)
            )
            assert tenants["alice"]["charged"]["modeled_seconds"] == (
                pytest.approx(0.5 * modeled)
            )
            assert tenants["alice"]["cse_credited_seconds"] == (
                pytest.approx(tenants["bob"]["cse_charged_seconds"])
            )
            report = service.accounting()
            assert "alice" in report and "bob" in report

    def test_accounting_disabled(self, workload):
        query, inputs = workload
        engine = FuseMEEngine(make_config(block_size=BS))
        with MatrixService(
            engine, ServiceConfig(accounting=False)
        ) as service:
            assert service.accountant is None
            with pytest.raises(RuntimeError, match="accounting"):
                service.accounting()
            assert "accounting" not in service.status()


# -- CSE / plan-cache trace instants ----------------------------------------


class TestTraceInstants:
    def test_cse_owner_and_adopt_instants_on_cluster_trace(self, workload):
        query, inputs = workload
        config = ServiceConfig(
            cross_query_cse=True, result_cache_entries=0
        )
        engine = FuseMEEngine(
            make_config(block_size=BS, time_model="scheduled")
        )
        with MatrixService(engine, config) as service:
            alice = service.open_session("alice")
            for name, matrix in inputs.items():
                alice.bind(name, matrix)
            owned = alice.execute(query, timeout=60)

            key = result_key(
                service.engine.planning_signature(), as_dag(query), inputs
            )
            service.pool.subplans.lease(key, "alice")
            bob = service.open_session("bob")
            for name, matrix in inputs.items():
                bob.bind(name, matrix)
            ticket = bob.submit(query)
            wait_for_running(service)
            service.pool.subplans.complete(key, owned.result)
            ticket.result(timeout=30)

            names = [
                e.name for e in service.pool.replicas[0].cluster.trace.events
                if e.category == "cse"
            ]
        assert "cse:owner" in names  # alice executed as the key's owner
        assert "cse:adopt" in names  # bob adopted her in-flight result


# -- SLO burn-rate alerting --------------------------------------------------


class TestSLOAlerting:
    def test_latency_regression_flips_alert_everywhere(self, workload):
        """A latency target no real query can meet is the induced
        regression: the alert must show up on the bus, in ``status()``,
        and on a real HTTP scrape of ``/metrics``."""
        query, inputs = workload
        config = ServiceConfig(
            accounting=True,
            slos=(SLOSpec(
                tenant="alice",
                latency_target_s=1e-9,
                objective=0.5,
                burn_alert_threshold=1.5,
            ),),
        )
        engine = FuseMEEngine(make_config(block_size=BS))
        sink = engine.telemetry.attach(MemorySink())
        with MatrixService(engine, config) as service:
            session = service.open_session("alice")
            for name, matrix in inputs.items():
                session.bind(name, matrix)
            for _ in range(3):
                session.execute(query, timeout=60)

            # 1. the bus
            alerts = sink.named("slo.burn_alert")
            assert len(alerts) == 1
            assert alerts[0].attrs["tenant"] == "alice"
            assert alerts[0].value >= 1.5
            # 2. status()
            state = service.status()["slo"]["alice"]
            assert state["burning"] is True and state["alerts"] == 1
            # 3. a real scrape over HTTP
            server = service.serve_metrics()
            assert service.serve_metrics() is server  # idempotent
            with urllib.request.urlopen(server.url + "/metrics") as resp:
                page = resp.read().decode("utf-8")
            assert validate_exposition(page) > 0
            assert 'repro_slo_burning{tenant="alice"} 1' in page
            with urllib.request.urlopen(server.url + "/status") as resp:
                doc = json.loads(resp.read().decode("utf-8"))
            assert doc["slo"]["alice"]["burning"] is True
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(server.url + "/nope")
            assert excinfo.value.code == 404
        # the endpoint dies with the service
        with pytest.raises(urllib.error.URLError):
            urllib.request.urlopen(server.url + "/metrics", timeout=1)

    def test_generous_target_never_burns(self, workload):
        query, inputs = workload
        config = ServiceConfig(
            slos=(SLOSpec(tenant="alice", latency_target_s=300.0),),
        )
        engine = FuseMEEngine(make_config(block_size=BS))
        sink = engine.telemetry.attach(MemorySink())
        with MatrixService(engine, config) as service:
            session = service.open_session("alice")
            for name, matrix in inputs.items():
                session.bind(name, matrix)
            session.execute(query, timeout=60)
            assert service.status()["slo"]["alice"]["burning"] is False
        assert not sink.named("slo.burn_alert")


# -- exposition round-trip ---------------------------------------------------


class TestExposition:
    def test_multi_replica_multi_tenant_page_validates(self):
        config = ServiceConfig(
            accounting=True,
            num_replicas=2,
            slos=(
                SLOSpec(tenant="alice", latency_target_s=60.0),
                SLOSpec(tenant="bob", latency_target_s=60.0),
            ),
        )
        engine = FuseMEEngine(make_config(block_size=BS))
        with MatrixService(engine, config) as service:
            for i, tenant in enumerate(("alice", "bob", "carol")):
                query, inputs = tenant_query(i)
                session = service.open_session(tenant)
                for name, matrix in inputs.items():
                    session.bind(name, matrix)
                session.execute(query, timeout=60)
            page = service.prometheus()
        assert validate_exposition(page) > 0
        for needle in (
            'repro_tenant_queries_total{outcome="served",tenant="alice"} 1',
            'repro_tenant_queries_total{outcome="served",tenant="carol"} 1',
            'repro_tenant_charged_seconds_total{resource="modeled",'
            'tenant="bob"}',
            'repro_tenant_cse_transfer_seconds_total{direction="credited",'
            'tenant="alice"} 0',
            'repro_slo_burn_rate{tenant="alice",window="5m"}',
            'repro_slo_burning{tenant="bob"} 0',
            'repro_slo_latency_target_seconds{tenant="alice"} 60',
        ):
            assert needle in page, needle
