"""The closed calibration loop, end to end.

Three contracts:

* ``calibration="off"`` (the default) is inert — every engine's outputs and
  modeled metrics are bit-identical to a default-config run, and the store
  stays empty;
* ``calibration="observe"`` feeds the store without touching planning —
  outputs and modeled elapsed/comm stay identical, observations accumulate;
* ``calibration="active"`` converges — the first execute runs on paper
  constants, its error evicts the cached plan, the re-plan prices with
  fitted coefficients, prediction error collapses under the re-plan
  threshold, and the loop then settles into plan-cache hits.
"""

import numpy as np
import pytest

from repro import (
    DistMELikeEngine,
    FuseMEEngine,
    LocalXLAEngine,
    MatFastLikeEngine,
    SystemDSLikeEngine,
)
from repro.lang import log, matrix_input
from repro.matrix import rand_dense, rand_sparse
from repro.obs.prometheus import validate_exposition
from repro.serving import MatrixService

from tests.conftest import make_config

BS = 25
DISTRIBUTED = [
    FuseMEEngine, SystemDSLikeEngine, MatFastLikeEngine, DistMELikeEngine,
]


def bench_like_config(**options):
    """The benchmark cluster shape, where calibration visibly re-plans."""
    return make_config(
        num_nodes=8, tasks_per_node=12,
        task_memory_budget=8 * 1024 * 1024,
        input_split_bytes=36 * 1024,
        **options,
    )


def gnmf_like_query():
    x = matrix_input("X", 200, 150, BS, density=0.05)
    u = matrix_input("U", 200, 50, BS)
    v = matrix_input("V", 150, 50, BS)
    return x * log(u @ v.T + 1e-8)


def inputs():
    return {
        "X": rand_sparse(200, 150, 0.05, BS, seed=1),
        "U": rand_dense(200, 50, BS, seed=2),
        "V": rand_dense(150, 50, BS, seed=3),
    }


def run(engine_cls, **config_options):
    engine = engine_cls(make_config(**config_options))
    result = engine.execute(gnmf_like_query(), inputs())
    outputs = [
        result.outputs[root].to_numpy() for root in result.dag.roots
    ]
    return engine, result, outputs


class TestOffIsInert:
    @pytest.mark.parametrize(
        "engine_cls", DISTRIBUTED + [LocalXLAEngine],
        ids=lambda cls: cls.name,
    )
    def test_off_bit_identical_to_default(self, engine_cls):
        _, default_result, default_outputs = run(engine_cls)
        engine, off_result, off_outputs = run(engine_cls, calibration="off")
        for got, expected in zip(off_outputs, default_outputs):
            assert np.array_equal(got, expected)
        assert off_result.metrics.totals() == default_result.metrics.totals()
        if engine_cls is not LocalXLAEngine:
            assert engine.calibration.num_observations == 0
            assert engine.calibration.generation == 0

    def test_off_prices_with_paper_constants(self):
        engine = FuseMEEngine(make_config(calibration="off"))
        # even a hand-fed store must not leak into planning when off
        engine.calibration.observe(
            "cfo", "mid", net_bytes=1.0, flops=1.0, measured_seconds=99.0
        )
        assert engine.calibration_for("cfo", None) is None


class TestObserveIsNonInvasive:
    @pytest.mark.parametrize(
        "engine_cls", DISTRIBUTED, ids=lambda cls: cls.name
    )
    def test_observe_leaves_numbers_identical(self, engine_cls):
        _, off_result, off_outputs = run(engine_cls, calibration="off")
        engine, obs_result, obs_outputs = run(
            engine_cls, calibration="observe"
        )
        for got, expected in zip(obs_outputs, off_outputs):
            assert np.array_equal(got, expected)
        assert obs_result.metrics.elapsed_seconds == \
            off_result.metrics.elapsed_seconds
        assert obs_result.metrics.comm_bytes == off_result.metrics.comm_bytes
        assert engine.calibration.num_observations > 0
        assert engine.calibration.generation == 1
        # observing never re-plans
        assert engine.plan_cache.stats()["invalidations"] == 0


class TestActiveLoopConverges:
    def test_error_collapses_and_cache_settles(self):
        engine = FuseMEEngine(bench_like_config(calibration="active"))
        query, bound = gnmf_like_query(), inputs()
        # the single fused unit yields one observation per execute, so the
        # fit appears after min_samples (3) iterations; two more show the
        # converged steady state (no eviction, cache hits)
        errors, evictions = [], []
        for _ in range(5):
            profile = engine.profile(query, bound)
            errors.append(profile.mean_abs_seconds_error)
            evictions.append(
                profile.counters.get("plan_cache_calibration_evictions", 0)
            )
        assert errors[0] > 0.5  # paper constants: the ~30x gap
        assert evictions[0] == 1  # error-triggered re-plan
        assert errors[-1] is not None and errors[-1] <= 0.5
        assert errors[-1] < errors[0]
        # the loop settles: later iterations neither evict nor re-plan
        assert evictions[-1] == 0
        assert engine.plan_cache.stats()["hits"] > 0

    def test_active_outputs_stay_numerically_close(self):
        _, _, off_outputs = run(FuseMEEngine, calibration="off")
        engine = FuseMEEngine(make_config(calibration="active"))
        query, bound = gnmf_like_query(), inputs()
        for _ in range(3):
            result = engine.execute(query, bound)
        active_outputs = [
            result.outputs[root].to_numpy() for root in result.dag.roots
        ]
        for got, expected in zip(active_outputs, off_outputs):
            assert np.allclose(got, expected)

    def test_mode_is_part_of_the_planning_signature(self):
        off = FuseMEEngine(make_config(calibration="off"))
        active = FuseMEEngine(make_config(calibration="active"))
        assert off.planning_signature() != active.planning_signature()


class TestServingExposure:
    def test_status_and_prometheus_carry_calibration(self):
        engine = FuseMEEngine(make_config(calibration="observe"))
        with MatrixService(engine=engine) as service:
            with service.open_session("alice") as session:
                for name, matrix in inputs().items():
                    session.bind(name, matrix)
                session.execute(gnmf_like_query(), timeout=30.0)
            status = service.status()
            assert status["calibration"]["observations"] > 0
            assert status["calibration"]["generation"] >= 1
            page = service.prometheus()
        assert validate_exposition(page) > 0
        assert "repro_calibration_observations_total" in page
        assert "repro_calibration_generation" in page
