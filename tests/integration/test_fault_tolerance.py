"""End-to-end fault tolerance: GNMF under the event-driven runtime.

The acceptance bar for the runtime subsystem: with ``time_model="scheduled"``
and a seeded ``FaultPlan(crash_prob=0.05, straggler_factor=4.0)``, a GNMF
run completes with *bit-identical* factor matrices (faults cost time, never
correctness), retries visible in metrics, and a valid Chrome-trace export —
while the default config reproduces the seed's elapsed/comm numbers exactly.
"""

import json

import numpy as np

from repro import FaultPlan, FuseMEEngine
from repro.cluster.runtime import validate_chrome_trace
from repro.matrix.generators import rand_sparse
from repro.workloads import GNMF

from tests.conftest import make_config

BS = 25

#: Pinned at the seed commit (PR 0) by running this exact workload with
#: the then-only aggregate timing path; time_model="aggregate" must keep
#: reproducing these numbers bit-for-bit.
SEED_ELAPSED_SECONDS = 0.41678630400000005
SEED_COMM_BYTES = 3836576


def gnmf_workload():
    x = rand_sparse(200, 150, 0.05, BS, seed=7)
    return GNMF(200, 150, 50, 0.05, BS), x


def run_gnmf(config):
    gnmf, x = gnmf_workload()
    return gnmf.run(FuseMEEngine(config), x, iterations=2)


class TestAggregateRegression:
    def test_default_config_reproduces_seed_numbers_exactly(self):
        """time_model="aggregate" (the default) must not move any seed
        benchmark number: elapsed and comm are compared exactly."""
        run = run_gnmf(make_config())
        assert run.accumulated_seconds[-1] == SEED_ELAPSED_SECONDS
        assert run.total_comm_bytes == SEED_COMM_BYTES

    def test_explicit_aggregate_matches_default(self):
        explicit = run_gnmf(make_config(time_model="aggregate"))
        assert explicit.accumulated_seconds[-1] == SEED_ELAPSED_SECONDS
        assert explicit.total_comm_bytes == SEED_COMM_BYTES


class TestScheduledGNMF:
    def test_scheduled_without_faults_completes_and_costs_at_least_aggregate(self):
        aggregate = run_gnmf(make_config())
        scheduled = run_gnmf(make_config(time_model="scheduled"))
        assert scheduled.total_comm_bytes == aggregate.total_comm_bytes
        # modest overhead-accounting differences aside, per-slot scheduling
        # of real (skewed) cuboid tasks should not beat perfect balance
        assert (
            scheduled.accumulated_seconds[-1]
            >= 0.95 * aggregate.accumulated_seconds[-1]
        )

    def test_faulty_run_is_bit_identical_and_traces(self, tmp_path):
        plan = FaultPlan(crash_prob=0.05, straggler_factor=4.0, seed=11)
        healthy = run_gnmf(make_config())
        faulty_config = make_config(time_model="scheduled", fault_plan=plan)
        faulty = run_gnmf(faulty_config)

        # 1. faults cost modeled time, never correctness: outputs are
        #    bit-identical to the fault-free run ...
        assert np.array_equal(faulty.u.to_numpy(), healthy.u.to_numpy())
        assert np.array_equal(faulty.v.to_numpy(), healthy.v.to_numpy())

        # 2. ... and match the numpy reference of Eq. 6
        gnmf, x = gnmf_workload()
        xd = x.to_numpy()
        u, v = gnmf.initial_factors(seed=0)
        ud, vd = u.to_numpy(), v.to_numpy()
        eps = 1e-9
        for _ in range(2):
            u_new = ud * (vd.T @ xd) / (vd.T @ vd @ ud + eps)
            v_new = vd * (xd @ ud.T) / (vd @ ud @ ud.T + eps)
            ud, vd = u_new, v_new
        np.testing.assert_allclose(faulty.u.to_numpy(), ud, atol=1e-8)
        np.testing.assert_allclose(faulty.v.to_numpy(), vd, atol=1e-8)

        # 3. retries are visible in metrics and slow the run down
        result = FuseMEEngine(faulty_config).execute(
            [gnmf.query.u_update, gnmf.query.v_update],
            {"X": x, "U": u, "V": v},
        )
        assert result.metrics.num_retries > 0
        assert result.metrics.num_attempts > result.metrics.num_tasks
        assert result.trace is not None

        # 4. the trace exports as loadable Chrome-trace JSON
        path = tmp_path / "gnmf-trace.json"
        result.trace.write_chrome_trace(str(path))
        document = json.loads(path.read_text())
        validate_chrome_trace(document)
        retry_events = [
            e for e in document["traceEvents"] if e.get("cat") == "retry"
        ]
        assert len(retry_events) == result.metrics.num_retries

    def test_straggler_plan_slows_the_run(self):
        clean = run_gnmf(make_config(time_model="scheduled"))
        slowed = run_gnmf(
            make_config(
                time_model="scheduled",
                fault_plan=FaultPlan(
                    straggler_factor=4.0, straggler_prob=1.0
                ),
            )
        )
        assert (
            slowed.accumulated_seconds[-1] > clean.accumulated_seconds[-1]
        )

    def test_scheduled_skew_visible_in_metrics(self):
        gnmf, x = gnmf_workload()
        config = make_config(time_model="scheduled")
        u, v = gnmf.initial_factors(seed=0)
        result = FuseMEEngine(config).execute(
            [gnmf.query.u_update, gnmf.query.v_update],
            {"X": x, "U": u, "V": v},
        )
        assert result.metrics.max_skew_ratio >= 1.0
