"""Cross-engine integration: every engine computes identical numbers on a
battery of queries, while their cost profiles differ the way the paper says.
"""

import numpy as np
import pytest

from repro import (
    DistMELikeEngine,
    FuseMEEngine,
    MatFastLikeEngine,
    SystemDSLikeEngine,
)
from repro.lang import (
    DAG,
    colsum,
    evaluate,
    log,
    matrix_input,
    nnz_mask,
    rowsum,
    sq,
    sum_of,
)
from repro.matrix import rand_dense, rand_sparse

from tests.conftest import make_config

BS = 25
DISTRIBUTED = [FuseMEEngine, SystemDSLikeEngine, MatFastLikeEngine, DistMELikeEngine]


def inputs():
    return {
        "X": rand_sparse(200, 150, 0.05, BS, seed=1),
        "U": rand_dense(200, 50, BS, seed=2),
        "V": rand_dense(150, 50, BS, seed=3),
        "W": rand_dense(50, 150, BS, seed=4),
    }


def exprs():
    x = matrix_input("X", 200, 150, BS, density=0.05)
    u = matrix_input("U", 200, 50, BS)
    v = matrix_input("V", 150, 50, BS)
    w = matrix_input("W", 50, 150, BS)
    return x, u, v, w


QUERIES = {
    "nmf": lambda x, u, v, w: x * log(u @ v.T + 1e-8),
    "als_loss": lambda x, u, v, w: sum_of(nnz_mask(x) * sq(x - u @ w)),
    "chained_mm": lambda x, u, v, w: (u @ w) @ x.T,
    "rowsum_of_product": lambda x, u, v, w: rowsum(x * (u @ v.T)),
    "colsum_masked": lambda x, u, v, w: colsum(nnz_mask(x) * (u @ v.T)),
    "elementwise_only": lambda x, u, v, w: 1.0 / (x * 2.0 + 1.0),
    "transpose_heavy": lambda x, u, v, w: (v @ u.T).T * x,
    "deep_chain": lambda x, u, v, w: sq(x * log(u @ v.T + 1.0) + 1.0) - 1.0,
}


@pytest.mark.parametrize("name", sorted(QUERIES))
@pytest.mark.parametrize("engine_cls", DISTRIBUTED)
def test_engines_match_reference(name, engine_cls):
    data = inputs()
    expr = QUERIES[name](*exprs())
    expected = evaluate(
        DAG(expr.node).roots[0], {k: m.to_numpy() for k, m in data.items()}
    )
    result = engine_cls(make_config()).execute(expr, data)
    np.testing.assert_allclose(
        result.output().to_numpy(),
        np.atleast_2d(expected),
        atol=1e-7,
    )


def test_fuseme_fuses_most():
    """FuseME's plan has the fewest units on a fusable query."""
    data = inputs()
    x, u, v, w = exprs()
    expr = x * log(u @ v.T + 1e-8)
    unit_counts = {}
    for engine_cls in DISTRIBUTED:
        result = engine_cls(make_config()).execute(expr, data)
        unit_counts[engine_cls.name] = len(result.fusion_plan.units)
    assert unit_counts["FuseME"] <= min(unit_counts.values())
    assert unit_counts["DistME"] == max(unit_counts.values())


def test_fuseme_moves_least_data_on_gnmf():
    """The Figure 14(d) ordering: FuseME moves the least data on the GNMF
    update.  (Needs paper-like proportions — a large factor dimension
    relative to the cluster — to show; at toy scale the parallelism floor
    can mask it.)"""
    m, n, k = 400, 300, 100
    data = {
        "X": rand_sparse(m, n, 0.05, BS, seed=1),
        "U2": rand_dense(k, n, BS, seed=5),
        "V2": rand_dense(m, k, BS, seed=6),
    }
    x = matrix_input("X", m, n, BS, density=0.05)
    u2 = matrix_input("U2", k, n, BS)
    v2 = matrix_input("V2", m, k, BS)
    expr = u2 * (v2.T @ x) / (v2.T @ v2 @ u2 + 1e-9)
    comm = {}
    for engine_cls in DISTRIBUTED:
        result = engine_cls(make_config()).execute(expr, data)
        comm[engine_cls.name] = result.comm_bytes
    assert comm["FuseME"] < comm["SystemDS"]
    assert comm["FuseME"] < comm["MatFast"]
    assert comm["FuseME"] < comm["DistME"]


def test_metrics_isolated_between_runs():
    data = inputs()
    x, u, v, w = exprs()
    engine = FuseMEEngine(make_config())
    first = engine.execute(x * 2.0, data)
    second = engine.execute(x * 2.0, data)
    assert first.metrics.num_stages == second.metrics.num_stages
