"""Failure-injection integration tests: O.O.M., timeouts and skew.

These reproduce the failure modes the paper's figures annotate ("O.O.M.",
"T.O.") and verify the engine's own escape hatches (elastic partitioning)
work where the baselines fail.
"""

import numpy as np
import pytest

from repro import FuseMEEngine, MatFastLikeEngine
from repro.datasets import density_skewed_matrix
from repro.errors import SimulatedTimeoutError, TaskOutOfMemoryError
from repro.lang import DAG, evaluate, log, matrix_input
from repro.matrix import rand_dense, rand_sparse

from tests.conftest import make_config

BS = 25


def nmf(rows=200, cols=150, k=50, density=0.05):
    inputs = {
        "X": rand_sparse(rows, cols, density, BS, seed=1),
        "U": rand_dense(rows, k, BS, seed=2),
        "V": rand_dense(cols, k, BS, seed=3),
    }
    x = matrix_input("X", rows, cols, BS, density=density)
    u = matrix_input("U", rows, k, BS)
    v = matrix_input("V", cols, k, BS)
    return x * log(u @ v.T + 1e-8), inputs


class TestMemoryPressure:
    def test_cfo_elasticity_survives_tight_budget(self):
        """The paper's core claim: the CFO adjusts (P, Q, R) to fit theta_t,
        so FuseME keeps running where broadcast-based execution dies."""
        expr, inputs = nmf()
        tight = make_config(task_memory_budget=90_000)
        result = FuseMEEngine(tight).execute(expr, inputs)
        expected = evaluate(
            DAG(expr.node).roots[0],
            {n: m.to_numpy() for n, m in inputs.items()},
        )
        np.testing.assert_allclose(result.output().to_numpy(), expected, atol=1e-8)
        assert result.metrics.peak_task_memory <= tight.cluster.task_memory_budget

    def test_matfast_oom_at_same_budget(self):
        expr, inputs = nmf()
        tight = make_config(task_memory_budget=90_000)
        with pytest.raises(TaskOutOfMemoryError):
            MatFastLikeEngine(tight).execute(expr, inputs)

    def test_oom_error_carries_details(self):
        expr, inputs = nmf()
        tiny = make_config(task_memory_budget=1_000)
        with pytest.raises(TaskOutOfMemoryError) as exc:
            MatFastLikeEngine(tiny).execute(expr, inputs)
        assert exc.value.used_bytes > exc.value.budget_bytes


class TestTimeout:
    def test_simulated_timeout_raised(self):
        expr, inputs = nmf()
        config = make_config(timeout_seconds=1e-9)
        with pytest.raises(SimulatedTimeoutError):
            FuseMEEngine(config).execute(expr, inputs)

    def test_generous_timeout_passes(self):
        expr, inputs = nmf()
        config = make_config(timeout_seconds=3600.0)
        FuseMEEngine(config).execute(expr, inputs)  # must not raise


class TestSkew:
    def test_skewed_input_still_correct(self):
        """Skewed sparsity (the paper's future-work concern) does not break
        correctness, only balance."""
        x_matrix = density_skewed_matrix(
            200, 150, dense_fraction=0.2, dense_density=0.4,
            sparse_density=0.005, block_size=BS, seed=0,
        )
        density = x_matrix.density
        inputs = {
            "X": x_matrix,
            "U": rand_dense(200, 50, BS, seed=2),
            "V": rand_dense(150, 50, BS, seed=3),
        }
        x = matrix_input("X", 200, 150, BS, density=density)
        u = matrix_input("U", 200, 50, BS)
        v = matrix_input("V", 150, 50, BS)
        expr = x * log(u @ v.T + 1e-8)
        result = FuseMEEngine(make_config()).execute(expr, inputs)
        expected = evaluate(
            DAG(expr.node).roots[0],
            {n: m.to_numpy() for n, m in inputs.items()},
        )
        np.testing.assert_allclose(result.output().to_numpy(), expected, atol=1e-8)


class TestScaleUp:
    def test_more_nodes_reduce_elapsed_time(self):
        """Figure 12(d)/(h): elapsed time drops as nodes are added."""
        expr, inputs = nmf(rows=400, cols=300, k=100, density=0.1)
        times = {}
        for nodes in (2, 4, 8):
            config = make_config(num_nodes=nodes)
            result = FuseMEEngine(config).execute(expr, inputs)
            times[nodes] = result.elapsed_seconds
        assert times[8] < times[4] < times[2]
