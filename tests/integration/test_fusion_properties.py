"""Property-based integration tests: fusion never changes results.

Random expression trees over fixed inputs are executed by FuseME (fully
fused) and checked against the reference interpreter, across random
partitionings — the library's core safety invariant.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import FuseMEEngine
from repro.cluster import SimulatedCluster
from repro.core.cfo import CuboidFusedOperator
from repro.core.plan import PartialFusionPlan
from repro.lang import DAG, evaluate, log, matrix_input, sq, sum_of
from repro.matrix import rand_dense, rand_sparse

from tests.conftest import make_config

BS = 25
M, N, K = 100, 75, 50


def fixed_inputs():
    return {
        "X": rand_sparse(M, N, 0.1, BS, seed=11),
        "U": rand_dense(M, K, BS, seed=12),
        "V": rand_dense(N, K, BS, seed=13),
    }


INPUT_MATRICES = fixed_inputs()
DENSE_ENV = {k: m.to_numpy() for k, m in INPUT_MATRICES.items()}


def leaf_exprs():
    return {
        "X": matrix_input("X", M, N, BS, density=0.1),
        "U": matrix_input("U", M, K, BS),
        "V": matrix_input("V", N, K, BS),
    }


@st.composite
def fused_expressions(draw):
    """A random (I x J)-shaped expression around one U @ V^T product."""
    leaves = leaf_exprs()
    base = leaves["U"] @ leaves["V"].T
    ops = draw(st.lists(
        st.sampled_from(["mask", "add_eps", "log1p", "sq", "scale", "sub_x"]),
        min_size=1, max_size=4,
    ))
    expr = base
    for op in ops:
        if op == "mask":
            expr = leaves["X"] * expr
        elif op == "add_eps":
            expr = expr + 0.5
        elif op == "log1p":
            expr = log(expr * expr + 1.0)
        elif op == "sq":
            expr = sq(expr)
        elif op == "scale":
            expr = expr * 2.0
        elif op == "sub_x":
            expr = expr - leaves["X"]
    if draw(st.booleans()):
        expr = sum_of(expr)
    return expr


@settings(max_examples=25, deadline=None)
@given(fused_expressions())
def test_fuseme_matches_reference_on_random_expressions(expr):
    engine = FuseMEEngine(make_config())
    result = engine.execute(expr, INPUT_MATRICES)
    expected = np.atleast_2d(evaluate(DAG(expr.node).roots[0], DENSE_ENV))
    np.testing.assert_allclose(
        result.output().to_numpy(), expected, atol=1e-7, rtol=1e-7
    )


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 4), st.integers(1, 3), st.integers(1, 2))
def test_cfo_partitioning_invariance(p, q, r):
    """Any legal (P, Q, R) produces the same numbers."""
    leaves = leaf_exprs()
    expr = leaves["X"] * log(leaves["U"] @ leaves["V"].T + 1e-8)
    dag = DAG(expr.node)
    plan = PartialFusionPlan(set(dag.operators()), dag)
    config = make_config()
    cfo = CuboidFusedOperator(plan, config, pqr=(p, q, r))
    out = cfo.execute(SimulatedCluster(config), INPUT_MATRICES)
    expected = evaluate(dag.roots[0], DENSE_ENV)
    np.testing.assert_allclose(out.to_numpy(), expected, atol=1e-8)


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 4), st.integers(1, 3), st.integers(1, 2))
def test_cfo_net_cost_matches_closed_form(p, q, r):
    """Measured consolidation equals R|X| + Q|U| + P|V| exactly (the
    matrices are materialized, so no estimation error)."""
    leaves = leaf_exprs()
    expr = leaves["X"] * log(leaves["U"] @ leaves["V"].T + 1e-8)
    dag = DAG(expr.node)
    plan = PartialFusionPlan(set(dag.operators()), dag)
    config = make_config()
    cfo = CuboidFusedOperator(plan, config, pqr=(p, q, r))
    cluster = SimulatedCluster(config)
    cfo.execute(cluster, INPUT_MATRICES)
    x, u, v = (INPUT_MATRICES[k] for k in ("X", "U", "V"))
    expected = r * x.nbytes + q * u.nbytes + p * v.nbytes
    measured = cluster.metrics.consolidation_bytes
    # block-boundary slicing makes sparse sizes vary slightly per slab
    assert measured == pytest.approx(expected, rel=0.12)
