"""Shared fixtures: a small simulated cluster and reusable matrices."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ClusterConfig, EngineConfig


def make_config(
    block_size: int = 25,
    num_nodes: int = 2,
    tasks_per_node: int = 4,
    task_memory_budget: int = 64 * 1024 * 1024,
    input_split_bytes: int = 64 * 1024,
    **engine_options,
) -> EngineConfig:
    """A laptop-sized engine config used across the test suite."""
    cluster = ClusterConfig(
        num_nodes=num_nodes,
        tasks_per_node=tasks_per_node,
        task_memory_budget=task_memory_budget,
        input_split_bytes=input_split_bytes,
    )
    return EngineConfig(cluster=cluster, block_size=block_size, **engine_options)


@pytest.fixture
def config() -> EngineConfig:
    return make_config()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(42)


def assert_matrix_close(got, expected: np.ndarray, atol: float = 1e-8) -> None:
    """Compare a BlockedMatrix (or Block) against a dense reference."""
    actual = got.to_numpy()
    assert actual.shape == expected.shape, (actual.shape, expected.shape)
    np.testing.assert_allclose(actual, expected, atol=atol, rtol=1e-9)
