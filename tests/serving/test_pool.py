"""Replica pool: budget partitioning, affinity, shared state, lifecycle."""

import threading

import pytest

from repro.config import ServiceConfig
from repro.core import FuseMEEngine
from repro.errors import ServingError, ServiceOverloadedError
from repro.lang import matrix_input
from repro.matrix import rand_dense
from repro.serving import MatrixService, QueryTicket, split_budget

from tests.conftest import make_config
from tests.serving.test_service import StubEngine

QUERY = matrix_input("X", 50, 50, 25) * 2.0


def make_service(engine=None, **options):
    options.setdefault("dispatch_poll_seconds", 0.005)
    return MatrixService(
        engine=engine or StubEngine(), config=ServiceConfig(**options)
    )


def x_matrix(seed=1):
    return rand_dense(50, 50, 25, seed=seed)


# -- budget partitioning ---------------------------------------------------


def test_split_budget_sums_exactly():
    for total, parts in [(100, 3), (7, 7), (1 << 30, 4), (11, 2)]:
        shares = split_budget(total, parts)
        assert len(shares) == parts
        assert sum(shares) == total
        assert max(shares) - min(shares) <= 1
        assert all(share > 0 for share in shares)


def test_split_budget_rejects_bad_input():
    with pytest.raises(ValueError):
        split_budget(100, 0)
    with pytest.raises(ValueError):
        split_budget(2, 3)


def test_per_replica_budgets_sum_to_service_budget():
    budget = 90 * 1024 * 1024
    service = make_service(num_replicas=3, memory_budget_bytes=budget)
    try:
        status = service.status()
        shares = [
            r["memory_budget_bytes"] for r in status["replicas"]
        ]
        assert len(shares) == 3
        assert sum(shares) == budget
        assert status["memory_budget_bytes"] == budget
    finally:
        service.close()


def test_budgets_resplit_on_resize():
    budget = 90 * 1024 * 1024
    service = make_service(num_replicas=2, memory_budget_bytes=budget)
    try:
        service.pool.add_replica()
        shares = [r.memory_budget for r in service.pool.replicas]
        assert len(shares) == 3 and sum(shares) == budget
        service.pool.remove_replica()
        shares = [r.memory_budget for r in service.pool.replicas]
        assert len(shares) == 2 and sum(shares) == budget
    finally:
        service.close()


# -- routing / affinity ----------------------------------------------------


def test_tenant_session_affinity():
    service = make_service(num_replicas=3, result_cache_entries=0)
    try:
        for tenant in ("alice", "bob", "carol", "dave"):
            expected = service.replica_for(tenant).name
            session = service.open_session(tenant).bind("X", x_matrix())
            for _ in range(3):
                served = session.execute(QUERY, timeout=10.0)
                assert served.replica == expected
            other = service.open_session(tenant).bind("X", x_matrix(2))
            assert (
                other.execute(QUERY, timeout=10.0).replica == expected
            ), "all of a tenant's sessions share one replica"
    finally:
        service.close()


def test_tenants_spread_across_replicas():
    service = make_service(num_replicas=4, result_cache_entries=0)
    try:
        routed = {
            service.replica_for(f"tenant-{i}").name for i in range(64)
        }
        assert len(routed) > 1
    finally:
        service.close()


def test_rebalance_reports_current_assignment():
    service = make_service(num_replicas=2)
    try:
        service.open_session("alice")
        service.open_session("bob")
        assignment = service.rebalance()
        assert set(assignment) == {"alice", "bob"}
        for tenant, name in assignment.items():
            assert service.replica_for(tenant).name == name
    finally:
        service.close()


def test_remove_replica_reroutes_its_tenants():
    service = make_service(num_replicas=3, result_cache_entries=0)
    try:
        victim = service.pool.replicas[-1].name
        orphans = [
            f"tenant-{i}" for i in range(64)
            if service.replica_for(f"tenant-{i}").name == victim
        ]
        assert orphans, "some tenant should route to the victim replica"
        service.pool.remove_replica(victim)
        for tenant in orphans:
            assert service.replica_for(tenant).name != victim
        # orphaned tenants still get served after the resize
        session = service.open_session(orphans[0]).bind("X", x_matrix())
        assert session.execute(QUERY, timeout=10.0).output() is not None
    finally:
        service.close()


def test_cannot_remove_last_replica():
    service = make_service(num_replicas=1)
    try:
        with pytest.raises(ServingError):
            service.pool.remove_replica()
    finally:
        service.close()


# -- shared state ----------------------------------------------------------


def test_result_cache_is_shared_across_replicas():
    service = make_service(num_replicas=4)
    try:
        matrix = x_matrix()
        first_tenant = None
        hit = None
        # find two tenants on different replicas, sharing one bound matrix
        for i in range(64):
            tenant = f"tenant-{i}"
            replica = service.replica_for(tenant).name
            if first_tenant is None:
                first_tenant = (tenant, replica)
                session = service.open_session(tenant).bind("X", matrix)
                first = session.execute(QUERY, timeout=10.0)
                assert not first.from_cache
            elif replica != first_tenant[1]:
                session = service.open_session(tenant).bind("X", matrix)
                hit = session.execute(QUERY, timeout=10.0)
                break
        assert hit is not None, "no second replica received a tenant"
        assert hit.from_cache, "one replica's fill must answer another's probe"
    finally:
        service.close()


def test_calibration_store_is_shared_and_registered():
    engine = FuseMEEngine(make_config())
    service = MatrixService(engine, ServiceConfig(num_replicas=3))
    try:
        replicas = service.pool.replicas
        for replica in replicas:
            assert replica.engine.calibration is engine.calibration
        clients = service.status()["calibration"]["clients"]
        assert [r.name for r in replicas] == clients
    finally:
        service.close()


def test_clones_preserve_planning_signature():
    engine = FuseMEEngine(make_config(), optimizer_method="exhaustive")
    service = MatrixService(engine, ServiceConfig(num_replicas=3))
    try:
        signatures = {
            r.engine.planning_signature() for r in service.pool.replicas
        }
        assert len(signatures) == 1, (
            "replica clones must plan identically (shared result-cache "
            "keys depend on it)"
        )
    finally:
        service.close()


def test_process_backend_workers_split_across_replicas():
    engine = StubEngine(
        make_config(execution_backend="process", local_parallelism=4)
    )
    service = make_service(engine, num_replicas=2)
    try:
        shares = [
            r.engine.config.local_parallelism for r in service.pool.replicas
        ]
        assert shares == [2, 2], "pool-wide workers stay bounded by the total"
    finally:
        service.close()


# -- observability ---------------------------------------------------------


def test_replica_status_shape():
    service = make_service(num_replicas=2)
    try:
        session = service.open_session("alice").bind("X", x_matrix())
        session.execute(QUERY, timeout=10.0)
        status = service.status()
        assert status["num_replicas"] == 2
        assert len(status["replicas"]) == 2
        for replica in status["replicas"]:
            for key in (
                "name", "queue_depth", "running", "busy", "closed",
                "served", "result_cache_hits", "failed", "timed_out",
                "memory_budget_bytes", "plan_cache", "slice_cache",
                "calibration_generation",
            ):
                assert key in replica, key
        assert sum(r["served"] for r in status["replicas"]) == 1
    finally:
        service.close()


def test_prometheus_has_replica_families():
    service = make_service(num_replicas=2)
    try:
        page = service.prometheus()
        assert "repro_replica_queue_depth" in page
        assert 'replica="replica-1"' in page
    finally:
        service.close()


# -- lifecycle -------------------------------------------------------------


def test_close_is_idempotent():
    service = make_service(num_replicas=3)
    service.close()
    service.close()
    service.close(drain=False)
    assert service.closed


def test_concurrent_close_does_not_raise():
    service = make_service(num_replicas=3)
    errors = []

    def closer():
        try:
            service.close()
        except Exception as exc:  # pragma: no cover - the assertion target
            errors.append(exc)

    threads = [threading.Thread(target=closer) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=10.0)
    assert not errors
    assert service.closed


def test_close_during_inflight_drains():
    engine = StubEngine()
    engine.release.clear()
    service = make_service(engine, num_replicas=1, result_cache_entries=0)
    session = service.open_session("alice").bind("X", x_matrix())
    ticket = session.submit(QUERY)
    assert engine.started.wait(timeout=10.0)

    closer = threading.Thread(target=service.close)
    closer.start()
    engine.release.set()
    closer.join(timeout=10.0)
    assert not closer.is_alive()
    assert ticket.result(timeout=10.0).output() is not None
    service.close()  # double close after close-during-inflight


def test_submit_after_close_raises():
    service = make_service(num_replicas=2, result_cache_entries=0)
    session = service.open_session("alice").bind("X", x_matrix())
    service.close()
    with pytest.raises(ServingError):
        session.submit(QUERY)


def test_replica_offer_after_close_sheds_nothing_silently():
    service = make_service(num_replicas=2, result_cache_entries=0)
    replica = service.pool.replicas[0]
    service.close()
    with pytest.raises(ServingError):
        replica.offer(QueryTicket("q", "t", None, {}, 1, 0))


def test_overload_still_sheds_per_replica():
    engine = StubEngine()
    engine.release.clear()
    service = make_service(
        engine, num_replicas=1, max_queue_depth=1, result_cache_entries=0
    )
    try:
        session = service.open_session("alice").bind("X", x_matrix())
        session.submit(QUERY)
        assert engine.started.wait(timeout=10.0)
        session.submit(QUERY)  # fills the queue
        with pytest.raises(ServiceOverloadedError):
            session.submit(QUERY)
    finally:
        engine.release.set()
        service.close()
