"""Consistent-hash ring: determinism, spread, bounded movement on resize."""

import pytest

from repro.serving.routing import ConsistentHashRing, stable_hash

TENANTS = [f"tenant-{i}" for i in range(200)]


def test_stable_hash_is_process_independent():
    # pinned values: the ring must route identically in every process
    # (Python's salted hash() would not)
    assert stable_hash("tenant-0") == stable_hash("tenant-0")
    assert stable_hash("tenant-0") != stable_hash("tenant-1")
    assert 0 <= stable_hash("anything") < 2**64


def test_route_is_deterministic_across_ring_instances():
    a = ConsistentHashRing(["replica-0", "replica-1", "replica-2"])
    b = ConsistentHashRing(["replica-2", "replica-0", "replica-1"])
    for tenant in TENANTS:
        assert a.route(tenant) == b.route(tenant)


def test_every_member_gets_keys():
    members = [f"replica-{i}" for i in range(4)]
    ring = ConsistentHashRing(members)
    assignments = ring.assignments(TENANTS)
    counts = {m: 0 for m in members}
    for member in assignments.values():
        counts[member] += 1
    assert all(count > 0 for count in counts.values())
    # vnodes keep the spread sane: no member owns more than half the keys
    assert max(counts.values()) < len(TENANTS) // 2


def test_add_moves_keys_only_to_the_new_member():
    ring = ConsistentHashRing(["replica-0", "replica-1", "replica-2"])
    before = ring.assignments(TENANTS)
    ring.add("replica-3")
    after = ring.assignments(TENANTS)
    moved = [t for t in TENANTS if before[t] != after[t]]
    assert moved, "adding a member should claim some keys"
    assert all(after[t] == "replica-3" for t in moved)
    # bounded movement: roughly 1/4 of keys move, never the majority
    assert len(moved) < len(TENANTS) // 2


def test_remove_moves_only_the_removed_members_keys():
    ring = ConsistentHashRing([f"replica-{i}" for i in range(4)])
    before = ring.assignments(TENANTS)
    ring.remove("replica-2")
    after = ring.assignments(TENANTS)
    for tenant in TENANTS:
        if before[tenant] == "replica-2":
            assert after[tenant] != "replica-2"
        else:
            assert after[tenant] == before[tenant]


def test_add_then_remove_restores_original_assignment():
    ring = ConsistentHashRing(["replica-0", "replica-1"])
    before = ring.assignments(TENANTS)
    ring.add("replica-2")
    ring.remove("replica-2")
    assert ring.assignments(TENANTS) == before


def test_membership_queries():
    ring = ConsistentHashRing(["replica-0"])
    assert len(ring) == 1
    assert "replica-0" in ring
    assert "replica-1" not in ring
    assert ring.members == frozenset({"replica-0"})


def test_error_cases():
    ring = ConsistentHashRing()
    with pytest.raises(LookupError):
        ring.route("tenant")
    ring.add("replica-0")
    with pytest.raises(ValueError):
        ring.add("replica-0")
    with pytest.raises(KeyError):
        ring.remove("replica-9")
    with pytest.raises(ValueError):
        ConsistentHashRing(vnodes=0)
