"""Result-cache keying: versions, re-binding, LRU eviction."""

import numpy as np

from repro.blocks.block import Block
from repro.cluster.metrics import MetricsCollector
from repro.execution import ExecutionResult, as_dag
from repro.lang import matrix_input
from repro.matrix import rand_dense
from repro.serving.result_cache import ResultCache, result_key

SIG = ("engine", "knobs")


def make_result(dag, matrix):
    return ExecutionResult(
        outputs={root: matrix for root in dag.roots},
        metrics=MetricsCollector(),
        fusion_plan=None,
        dag=dag,
    )


def query(name="X", n=50):
    return as_dag(matrix_input(name, n, n, 25) * 2.0)


class TestKeying:
    def test_identical_query_and_bindings_share_a_key(self):
        dag_a, dag_b = query(), query()  # independently built, same shape
        matrix = rand_dense(50, 50, 25, seed=1)
        assert result_key(SIG, dag_a, {"X": matrix}) == \
            result_key(SIG, dag_b, {"X": matrix})

    def test_set_block_bumps_version_and_changes_key(self):
        dag = query()
        matrix = rand_dense(50, 50, 25, seed=1)
        before = result_key(SIG, dag, {"X": matrix})
        matrix.set_block(0, 0, Block(np.ones((25, 25))))
        after = result_key(SIG, dag, {"X": matrix})
        assert before != after

    def test_rebinding_a_new_matrix_changes_key(self):
        dag = query()
        first = rand_dense(50, 50, 25, seed=1)
        second = rand_dense(50, 50, 25, seed=2)
        assert result_key(SIG, dag, {"X": first}) != \
            result_key(SIG, dag, {"X": second})

    def test_signature_is_part_of_the_key(self):
        dag = query()
        matrix = rand_dense(50, 50, 25, seed=1)
        assert result_key(("a",), dag, {"X": matrix}) != \
            result_key(("b",), dag, {"X": matrix})


class TestCache:
    def test_roundtrip_and_counters(self):
        cache = ResultCache(max_entries=4)
        dag = query()
        matrix = rand_dense(50, 50, 25, seed=1)
        key = result_key(SIG, dag, {"X": matrix})
        assert cache.get(key) is None
        result = make_result(dag, matrix)
        cache.put(key, result, pins={"X": matrix})
        assert cache.get(key) is result
        assert cache.hits == 1 and cache.misses == 1

    def test_stale_version_not_served(self):
        cache = ResultCache(max_entries=4)
        dag = query()
        matrix = rand_dense(50, 50, 25, seed=1)
        key = result_key(SIG, dag, {"X": matrix})
        cache.put(key, make_result(dag, matrix), pins={"X": matrix})
        matrix.set_block(0, 0, Block(np.ones((25, 25))))
        assert cache.get(result_key(SIG, dag, {"X": matrix})) is None

    def test_lru_eviction_by_entries(self):
        cache = ResultCache(max_entries=2)
        dag = query()
        keys = []
        for seed in range(3):
            matrix = rand_dense(50, 50, 25, seed=seed)
            key = result_key(SIG, dag, {"X": matrix})
            keys.append((key, matrix))
            cache.put(key, make_result(dag, matrix), pins={"X": matrix})
        assert cache.num_entries == 2
        assert cache.get(keys[0][0]) is None  # oldest evicted
        assert cache.get(keys[2][0]) is not None

    def test_byte_cap_evicts(self):
        matrix = rand_dense(50, 50, 25, seed=1)
        dag = query()
        cache = ResultCache(max_entries=8, max_bytes=int(matrix.nbytes * 1.5))
        for seed in range(3):
            m = rand_dense(50, 50, 25, seed=seed)
            key = result_key(SIG, dag, {"X": m})
            cache.put(key, make_result(dag, m), pins={"X": m})
        assert cache.num_entries == 1
        assert cache.cached_bytes <= int(matrix.nbytes * 1.5)

    def test_oversized_result_is_not_stored(self):
        matrix = rand_dense(50, 50, 25, seed=1)
        dag = query()
        cache = ResultCache(max_entries=8, max_bytes=matrix.nbytes - 1)
        key = result_key(SIG, dag, {"X": matrix})
        cache.put(key, make_result(dag, matrix), pins={"X": matrix})
        assert cache.num_entries == 0

    def test_disabled_cache(self):
        cache = ResultCache(max_entries=0)
        dag = query()
        matrix = rand_dense(50, 50, 25, seed=1)
        key = result_key(SIG, dag, {"X": matrix})
        cache.put(key, make_result(dag, matrix), pins={"X": matrix})
        assert cache.get(key) is None
        assert not cache.enabled

    def test_stats_dict(self):
        cache = ResultCache(max_entries=4)
        dag = query()
        matrix = rand_dense(50, 50, 25, seed=1)
        key = result_key(SIG, dag, {"X": matrix})
        cache.get(key)
        cache.put(key, make_result(dag, matrix), pins={"X": matrix})
        cache.get(key)
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["entries"] == 1
        assert stats["hit_rate"] == 0.5
