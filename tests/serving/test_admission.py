"""Admission control: bounded queues, DRR fairness, shedding, timeouts."""

import pytest

from repro.config import ServiceConfig
from repro.errors import ServiceOverloadedError
from repro.lang import matrix_input, sum_of, sq
from repro.matrix import rand_dense
from repro.execution import as_dag
from repro.serving.admission import AdmissionController, estimate_query_bytes


class FakeTicket:
    """The minimum surface AdmissionController needs from a ticket."""

    def __init__(self, tenant, cost, priority=0, enqueued_at=0.0, query_id="q"):
        self.tenant = tenant
        self.cost = cost
        self.priority = priority
        self.enqueued_at = enqueued_at
        self.query_id = query_id


def controller(budget=1000, **options):
    defaults = dict(
        max_concurrency=8,
        max_queue_depth=16,
        drr_quantum_bytes=10,
        queue_timeout_seconds=1.0,
    )
    defaults.update(options)
    return AdmissionController(ServiceConfig(**defaults), budget)


class TestEstimate:
    def test_counts_inputs_and_dense_outputs(self):
        x = matrix_input("X", 100, 50, 25)
        dag = as_dag(x * 2.0)
        matrix = rand_dense(100, 50, 25, seed=1)
        estimate = estimate_query_bytes(dag, {"X": matrix})
        assert estimate == matrix.nbytes + 100 * 50 * 8

    def test_shared_matrix_counted_once(self):
        x = matrix_input("X", 50, 50, 25)
        y = matrix_input("Y", 50, 50, 25)
        dag = as_dag(x + y)
        matrix = rand_dense(50, 50, 25, seed=2)
        both = estimate_query_bytes(dag, {"X": matrix, "Y": matrix})
        assert both == matrix.nbytes + 50 * 50 * 8

    def test_aggregation_output_is_cheap(self):
        x = matrix_input("X", 100, 100, 25)
        dag = as_dag(sum_of(sq(x)))
        matrix = rand_dense(100, 100, 25, seed=3)
        estimate = estimate_query_bytes(dag, {"X": matrix})
        # the scalar root adds 8 bytes, not a full dense matrix
        assert estimate == matrix.nbytes + 8


class TestShedding:
    def test_query_over_budget_is_shed_immediately(self):
        c = controller(budget=100)
        with pytest.raises(ServiceOverloadedError, match="memory budget"):
            c.offer(FakeTicket("a", cost=101))
        assert c.depth == 0
        assert c.num_shed == 1

    def test_full_queue_sheds(self):
        c = controller(max_queue_depth=2)
        c.offer(FakeTicket("a", 10))
        c.offer(FakeTicket("a", 10))
        with pytest.raises(ServiceOverloadedError, match="queue is full"):
            c.offer(FakeTicket("b", 10))
        assert c.depth == 2

    def test_query_exactly_at_budget_is_queued(self):
        c = controller(budget=100)
        c.offer(FakeTicket("a", 100))
        assert c.depth == 1


class TestWaves:
    def test_respects_max_concurrency(self):
        c = controller(max_concurrency=3)
        for i in range(5):
            c.offer(FakeTicket("a", 10, query_id=f"q{i}"))
        wave = c.next_wave()
        assert len(wave) == 3
        assert c.depth == 2

    def test_memory_budget_bounds_a_wave(self):
        """Two queries that fit alone but not together run in two waves."""
        c = controller(budget=100)
        c.offer(FakeTicket("a", 60, query_id="q1"))
        c.offer(FakeTicket("a", 60, query_id="q2"))
        first = c.next_wave()
        assert [t.query_id for t in first] == ["q1"]
        second = c.next_wave()
        assert [t.query_id for t in second] == ["q2"]

    def test_deficit_round_robin_interleaves_tenants(self):
        """A tenant that submitted first cannot monopolize the wave."""
        c = controller(drr_quantum_bytes=10)
        for i in range(4):
            c.offer(FakeTicket("alice", 10, query_id=f"a{i}"))
        for i in range(4):
            c.offer(FakeTicket("bob", 10, query_id=f"b{i}"))
        wave = c.next_wave()
        tenants = [t.tenant for t in wave]
        assert tenants == ["alice", "bob"] * 4

    def test_large_query_accumulates_credit(self):
        """A query costing many quanta is admitted after banking credit,
        not starved forever."""
        c = controller(budget=1000, drr_quantum_bytes=10)
        c.offer(FakeTicket("a", 95, query_id="big"))
        wave = c.next_wave()
        assert [t.query_id for t in wave] == ["big"]

    def test_priority_within_tenant(self):
        c = controller(max_concurrency=3)
        c.offer(FakeTicket("a", 10, priority=0, query_id="low"))
        c.offer(FakeTicket("a", 10, priority=5, query_id="high"))
        c.offer(FakeTicket("a", 10, priority=1, query_id="mid"))
        wave = c.next_wave()
        assert [t.query_id for t in wave] == ["high", "mid", "low"]

    def test_fifo_among_equal_priorities(self):
        c = controller(max_concurrency=2)
        c.offer(FakeTicket("a", 10, query_id="first"))
        c.offer(FakeTicket("a", 10, query_id="second"))
        assert [t.query_id for t in c.next_wave()] == ["first", "second"]

    def test_empty_controller_yields_empty_wave(self):
        assert controller().next_wave() == []


class TestExpiry:
    def test_expired_tickets_are_removed(self):
        c = controller(queue_timeout_seconds=1.0)
        c.offer(FakeTicket("a", 10, enqueued_at=0.0, query_id="old"))
        c.offer(FakeTicket("a", 10, enqueued_at=5.0, query_id="fresh"))
        expired = c.expire(now=4.0)
        assert [t.query_id for t in expired] == ["old"]
        assert c.depth == 1
        assert c.num_expired == 1
        assert [t.query_id for t in c.next_wave()] == ["fresh"]

    def test_no_timeout_configured(self):
        c = controller(queue_timeout_seconds=None)
        c.offer(FakeTicket("a", 10, enqueued_at=0.0))
        assert c.expire(now=1e9) == []
        assert c.depth == 1

    def test_drain_empties_everything(self):
        c = controller()
        c.offer(FakeTicket("a", 10))
        c.offer(FakeTicket("b", 10))
        assert len(c.drain()) == 2
        assert c.depth == 0
        assert c.next_wave() == []
