"""MatrixService lifecycle: shedding, timeouts, sessions, failure paths.

Uses a stub engine whose execute() blocks on an event, so overload
scenarios are constructed deterministically instead of by racing the
dispatcher.
"""

import threading

import pytest

from repro.cluster.metrics import MetricsCollector
from repro.config import ServiceConfig
from repro.errors import (
    QueryTimeoutError,
    ServiceOverloadedError,
    ServingError,
    SessionClosedError,
)
from repro.execution import Engine, ExecutionResult, as_dag
from repro.lang import matrix_input
from repro.matrix import rand_dense
from repro.serving import MatrixService

from tests.conftest import make_config

QUERY = matrix_input("X", 50, 50, 25) * 2.0
#: estimate_query_bytes for QUERY: input (20 kB) + dense 50x50 output.
QUERY_COST = 50 * 50 * 8 * 2


class StubEngine(Engine):
    """Engine double: returns the bound input as the output.

    ``release`` starts set; clear it to make in-flight executes park until
    the test releases them (``started`` flags that one arrived).
    """

    name = "stub"

    def __init__(self, config=None, fail_with=None):
        super().__init__(config or make_config())
        self.started = threading.Event()
        self.release = threading.Event()
        self.release.set()
        self.fail_with = fail_with
        self.num_executes = 0

    def plan_query(self, dag):  # pragma: no cover - never planned
        raise NotImplementedError

    def run_unit(self, unit, cluster, env):  # pragma: no cover
        raise NotImplementedError

    def execute(self, query, inputs, cluster=None):
        self.started.set()
        assert self.release.wait(timeout=10.0), "stub never released"
        self.num_executes += 1
        if self.fail_with is not None:
            raise self.fail_with
        dag = as_dag(query)
        matrix = next(iter(inputs.values()))
        return ExecutionResult(
            outputs={root: matrix for root in dag.roots},
            metrics=MetricsCollector(),
            fusion_plan=None,
            dag=dag,
        )


def make_service(engine=None, **options):
    options.setdefault("dispatch_poll_seconds", 0.005)
    return MatrixService(
        engine=engine or StubEngine(), config=ServiceConfig(**options)
    )


def x_matrix(seed=1):
    return rand_dense(50, 50, 25, seed=seed)


class TestHappyPath:
    def test_execute_roundtrip(self):
        with make_service() as service:
            with service.open_session("alice") as alice:
                alice.bind("X", x_matrix())
                served = alice.execute(QUERY, timeout=10.0)
        assert served.tenant == "alice"
        assert not served.from_cache
        assert served.output(0) is alice.bindings.get("X") or True
        assert served.queue_seconds >= 0.0
        assert served.service_seconds >= served.queue_seconds

    def test_repeat_query_hits_result_cache(self):
        engine = StubEngine()
        with make_service(engine) as service:
            alice = service.open_session("alice").bind("X", x_matrix())
            first = alice.execute(QUERY, timeout=10.0)
            second = alice.execute(QUERY, timeout=10.0)
        assert not first.from_cache
        assert second.from_cache
        assert engine.num_executes == 1
        assert second.result is first.result

    def test_async_submit_returns_a_ticket(self):
        with make_service() as service:
            alice = service.open_session("alice").bind("X", x_matrix())
            ticket = alice.submit(QUERY)
            served = ticket.result(timeout=10.0)
            assert ticket.done()
            assert ticket.exception() is None
        assert served.query_id == ticket.query_id

    def test_unbound_input_fails_eagerly(self):
        with make_service() as service:
            alice = service.open_session("alice")  # nothing bound
            with pytest.raises(Exception):
                alice.submit(QUERY)
            assert service.status()["queue_depth"] == 0


class TestOverload:
    def test_over_budget_query_is_shed_without_running(self):
        engine = StubEngine()
        with make_service(engine, memory_budget_bytes=QUERY_COST - 1) as service:
            alice = service.open_session("alice").bind("X", x_matrix())
            with pytest.raises(ServiceOverloadedError, match="memory budget"):
                alice.submit(QUERY)
            status = service.status()
        assert engine.num_executes == 0
        assert status["shed"] == 1
        assert status["tenants"]["alice"]["shed"] == 1
        assert status["cluster"]["num_stages"] == 0

    def test_full_queue_sheds(self):
        engine = StubEngine()
        engine.release.clear()  # park the first query in execute()
        with make_service(engine, max_concurrency=1,
                          max_queue_depth=1) as service:
            alice = service.open_session("alice").bind("X", x_matrix())
            blocker = alice.submit(QUERY)
            assert engine.started.wait(5.0)
            queued = alice.submit(QUERY, inputs={"X": x_matrix(seed=2)})
            with pytest.raises(ServiceOverloadedError, match="queue is full"):
                alice.submit(QUERY, inputs={"X": x_matrix(seed=3)})
            engine.release.set()
            blocker.result(timeout=10.0)
            queued.result(timeout=10.0)
        assert service.status()["shed"] == 1

    def test_queued_query_times_out(self):
        engine = StubEngine()
        engine.release.clear()
        with make_service(engine, max_concurrency=1,
                          queue_timeout_seconds=0.05) as service:
            alice = service.open_session("alice").bind("X", x_matrix())
            blocker = alice.submit(QUERY)
            assert engine.started.wait(5.0)
            doomed = alice.submit(QUERY, inputs={"X": x_matrix(seed=2)})
            threading.Event().wait(0.1)  # let the queue wait exceed 0.05s
            engine.release.set()
            blocker.result(timeout=10.0)
            with pytest.raises(QueryTimeoutError):
                doomed.result(timeout=10.0)
            status = service.status()
        assert status["timed_out"] == 1
        assert engine.num_executes == 1  # the expired query never ran

    def test_result_wait_timeout_raises_builtin_timeout(self):
        engine = StubEngine()
        engine.release.clear()
        with make_service(engine) as service:
            alice = service.open_session("alice").bind("X", x_matrix())
            ticket = alice.submit(QUERY)
            with pytest.raises(TimeoutError):
                ticket.result(timeout=0.05)
            engine.release.set()
            ticket.result(timeout=10.0)


class TestFailures:
    def test_engine_failure_lands_on_the_ticket(self):
        engine = StubEngine(fail_with=ValueError("boom"))
        with make_service(engine) as service:
            alice = service.open_session("alice").bind("X", x_matrix())
            ticket = alice.submit(QUERY)
            with pytest.raises(ValueError, match="boom"):
                ticket.result(timeout=10.0)
            assert isinstance(ticket.exception(), ValueError)
            status = service.status()
        assert status["failed"] == 1
        assert status["tenants"]["alice"]["failed"] == 1


class TestLifecycle:
    def test_close_drains_queued_queries(self):
        engine = StubEngine()
        with make_service(engine, max_concurrency=1) as service:
            alice = service.open_session("alice").bind("X", x_matrix())
            tickets = [
                alice.submit(QUERY, inputs={"X": x_matrix(seed=s)})
                for s in range(4)
            ]
        # context exit = close(drain=True): everything finished
        assert all(t.done() for t in tickets)
        assert all(t.exception() is None for t in tickets)

    def test_close_without_drain_fails_leftovers(self):
        engine = StubEngine()
        engine.release.clear()
        service = make_service(engine, max_concurrency=1)
        alice = service.open_session("alice").bind("X", x_matrix())
        blocker = alice.submit(QUERY)
        assert engine.started.wait(5.0)
        queued = alice.submit(QUERY, inputs={"X": x_matrix(seed=2)})
        service.close(drain=False, timeout=0.1)
        with pytest.raises(ServiceOverloadedError, match="shutting down"):
            queued.result(timeout=10.0)
        engine.release.set()
        blocker.result(timeout=10.0)  # in-flight work still completes
        service.close(timeout=10.0)

    def test_closed_service_rejects_work(self):
        service = make_service()
        alice = service.open_session("alice").bind("X", x_matrix())
        service.close()
        with pytest.raises(ServingError):
            service.open_session("bob")
        with pytest.raises(ServingError):
            alice.submit(QUERY)
        assert service.closed

    def test_closed_session_rejects_submits(self):
        with make_service() as service:
            alice = service.open_session("alice").bind("X", x_matrix())
            alice.close()
            with pytest.raises(SessionClosedError):
                alice.submit(QUERY)
            with pytest.raises(SessionClosedError):
                alice.bind("X", x_matrix())
            assert service.status()["sessions"] == 0


class TestStatus:
    def test_status_is_a_complete_plain_dict(self):
        with make_service() as service:
            alice = service.open_session("alice").bind("X", x_matrix())
            alice.execute(QUERY, timeout=10.0)
            alice.execute(QUERY, timeout=10.0)  # result-cache hit
            status = service.status()
        assert isinstance(status, dict)
        for key in (
            "queue_depth", "running", "sessions", "memory_budget_bytes",
            "tenants", "latency", "queue_wait", "served", "shed",
            "timed_out", "failed", "cache_hits", "result_cache",
            "plan_cache", "slice_cache", "cluster", "closed",
        ):
            assert key in status, key
        assert status["served"] == 2
        assert status["cache_hits"] == 1
        assert status["result_cache"]["hits"] >= 1
        assert status["latency"]["count"] == 2
        assert status["cluster"]["counters"] == {}  # stub never ran stages

    def test_periodic_log_line(self, caplog):
        with caplog.at_level("INFO", logger="repro.serving"):
            with make_service(log_every=1) as service:
                alice = service.open_session("alice").bind("X", x_matrix())
                alice.execute(QUERY, timeout=10.0)
        assert any("serving: served=" in r.message for r in caplog.records)


class TestCacheStatus:
    def test_each_cache_reports_a_stats_sub_dict(self):
        """status() embeds one stats dict per cache layer — the shape the
        Prometheus builders consume."""
        with make_service() as service:
            alice = service.open_session("alice").bind("X", x_matrix())
            alice.execute(QUERY, timeout=10.0)
            alice.execute(QUERY, timeout=10.0)  # result-cache hit
            status = service.status()
        for cache in ("result_cache", "plan_cache", "slice_cache"):
            stats = status[cache]
            assert isinstance(stats, dict), cache
            for key in ("hits", "misses", "entries"):
                assert key in stats, (cache, key)
        assert status["result_cache"]["hits"] == 1
        assert status["result_cache"]["misses"] >= 1
        assert status["result_cache"]["entries"] == 1


class TestServingTelemetry:
    """session.profile() and the Prometheus endpoint, on a real engine."""

    def _real_service(self, **engine_options):
        from repro import FuseMEEngine

        return make_service(FuseMEEngine(make_config(**engine_options)))

    def test_session_profile_round_trip(self):
        with self._real_service() as service:
            alice = service.open_session("alice").bind("X", x_matrix())
            profile = alice.profile(QUERY, timeout=10.0)
        assert profile.engine == "FuseME"
        assert len(profile.units) == 1
        assert profile.units[0].measured_seconds > 0.0
        assert profile.span.find("execute") is not None
        # the served result rides along
        assert profile.result.output(0).shape == (50, 50)

    def test_profile_requires_telemetry(self):
        with self._real_service(telemetry=False) as service:
            alice = service.open_session("alice").bind("X", x_matrix())
            with pytest.raises(RuntimeError, match="telemetry"):
                alice.profile(QUERY, timeout=10.0)

    def test_prometheus_endpoint_parses_and_covers_layers(self):
        from repro.obs.prometheus import validate_exposition

        with self._real_service() as service:
            alice = service.open_session("alice").bind("X", x_matrix())
            alice.execute(QUERY, timeout=10.0)
            alice.execute(QUERY, timeout=10.0)  # result-cache hit
            bob = service.open_session("bob").bind("X", x_matrix(seed=2))
            bob.execute(QUERY, timeout=10.0)
            text = service.prometheus()
        assert validate_exposition(text) > 0
        # engine stage totals (modeled numbers from the shared cluster)
        assert "repro_engine_stages_total" in text
        assert "repro_engine_elapsed_modeled_seconds_total" in text
        # cache counters for all three layers
        for cache in ("plan", "slice", "result"):
            assert f'repro_cache_hits_total{{cache="{cache}"}}' in text
        # per-tenant latency summary quantiles
        assert (
            'repro_serving_latency_seconds{quantile="0.99",tenant="alice"}'
            in text
        )
        assert 'repro_serving_latency_seconds_count{tenant="bob"} 1' in text
        assert (
            'repro_serving_queries_total{outcome="served",tenant="alice"} 2'
            in text
        )
