"""Service metrics: latency histograms, tenant counters, snapshots."""

from repro.serving.metrics import LatencyHistogram, ServiceMetrics, TenantStats


class TestLatencyHistogram:
    def test_empty(self):
        h = LatencyHistogram()
        snap = h.snapshot()
        assert snap["count"] == 0
        assert snap["p50"] == 0.0 and snap["p99"] == 0.0
        assert snap["mean"] == 0.0 and snap["min"] == 0.0

    def test_single_sample(self):
        h = LatencyHistogram()
        h.record(0.25)
        snap = h.snapshot()
        assert snap["count"] == 1
        assert snap["min"] == 0.25 and snap["max"] == 0.25
        # 0.25 is an exact bucket bound, and percentiles clamp to max
        assert snap["p50"] == 0.25 and snap["p99"] == 0.25

    def test_percentiles_are_monotone(self):
        h = LatencyHistogram()
        for i in range(1, 101):
            h.record(i / 100.0)
        snap = h.snapshot()
        assert snap["p50"] <= snap["p95"] <= snap["p99"] <= snap["max"]
        assert snap["p50"] >= 0.5  # median of U(0.01..1.0) lands near 0.5
        assert snap["p50"] <= 1.0

    def test_percentile_never_exceeds_observed_max(self):
        h = LatencyHistogram()
        h.record(0.0001)
        h.record(0.0003)
        assert h.percentile(0.99) <= h.max

    def test_mean_is_exact(self):
        h = LatencyHistogram()
        h.record(1.0)
        h.record(3.0)
        assert h.snapshot()["mean"] == 2.0

    def test_negative_durations_clamp_to_zero(self):
        h = LatencyHistogram()
        h.record(-1.0)
        assert h.min == 0.0
        assert h.count == 1


class TestTenantStats:
    def test_snapshot_keys(self):
        stats = TenantStats(submitted=3, served=2, cache_hits=1)
        snap = stats.snapshot()
        assert snap == {
            "submitted": 3, "served": 2, "cache_hits": 1,
            "shed": 0, "timed_out": 0, "failed": 0,
        }


class TestServiceMetrics:
    def test_per_tenant_flows(self):
        m = ServiceMetrics()
        m.record_submitted("alice")
        m.record_submitted("alice")
        m.record_submitted("bob")
        m.record_served("alice", from_cache=False,
                        queue_seconds=0.01, total_seconds=0.1)
        m.record_served("alice", from_cache=True,
                        queue_seconds=0.0, total_seconds=0.001)
        m.record_shed("bob")
        snap = m.snapshot()
        assert snap["tenants"]["alice"]["served"] == 2
        assert snap["tenants"]["alice"]["cache_hits"] == 1
        assert snap["tenants"]["bob"]["shed"] == 1
        assert snap["submitted"] == 3 and snap["served"] == 2
        assert snap["latency"]["count"] == 2

    def test_completed_counts_terminal_outcomes(self):
        m = ServiceMetrics()
        m.record_served("a", False, 0.0, 0.1)
        m.record_timed_out("a")
        m.record_failed("b")
        m.record_shed("b")  # shed is pre-admission, not "completed"
        assert m.snapshot()["completed"] == 3

    def test_totals_sum_across_tenants(self):
        m = ServiceMetrics()
        m.record_submitted("a")
        m.record_submitted("b")
        assert m.totals()["submitted"] == 2

    def test_log_line_mentions_key_figures(self):
        m = ServiceMetrics()
        m.record_served("a", from_cache=True,
                        queue_seconds=0.0, total_seconds=0.004)
        line = m.log_line(queue_depth=2, running=1)
        assert "served=1" in line
        assert "queued=2" in line
        assert "running=1" in line
        assert "result_cache_hit_rate=1.00" in line


class TestLatencyBucketEdges:
    """Edge cases of the geometric-bucket percentile model."""

    def test_zero_latency_sample(self):
        h = LatencyHistogram()
        h.record(0.0)
        snap = h.snapshot()
        assert snap["count"] == 1
        assert snap["min"] == 0.0 and snap["max"] == 0.0
        assert snap["p50"] == 0.0 and snap["p99"] == 0.0
        assert snap["mean"] == 0.0

    def test_below_smallest_bucket_clamps_to_max(self):
        h = LatencyHistogram()
        h.record(1e-9)  # far below the 2^-20 s first bound
        snap = h.snapshot()
        assert snap["p50"] == 1e-9
        assert snap["p99"] == 1e-9

    def test_beyond_largest_bucket_lands_in_overflow(self):
        h = LatencyHistogram()
        h.record(10_000.0)  # above the 2^12 s last bound
        assert h.percentile(0.5) == 10_000.0
        assert h.percentile(0.99) == 10_000.0

    def test_p99_on_sparse_buckets(self):
        """99 fast samples + 1 slow one: p99 must reach into the slow
        sample's bucket, p50 must stay in the fast one."""
        h = LatencyHistogram()
        for _ in range(99):
            h.record(0.001)
        h.record(8.0)
        assert h.percentile(0.50) <= 2 ** -9  # fast bucket bound (~2 ms)
        assert h.percentile(0.99) <= 2 ** -9  # rank 99 is still fast
        assert h.percentile(1.00) == 8.0
        snap = h.snapshot()
        assert snap["p95"] < 0.01
        assert snap["max"] == 8.0

    def test_two_samples_p99_is_slow_one(self):
        h = LatencyHistogram()
        h.record(0.001)
        h.record(4.0)
        # rank ceil(0.99 * 2) = 2 -> the slow sample's bucket
        assert h.percentile(0.99) == 4.0

    def test_snapshot_is_deterministic(self):
        def build():
            h = LatencyHistogram()
            for value in (0.004, 0.001, 2.5, 0.0, 0.031, 0.004):
                h.record(value)
            return h

        a, b = build(), build()
        assert a.snapshot() == b.snapshot()
        # reading never mutates: repeated snapshots are identical
        assert a.snapshot() == a.snapshot()

    def test_identical_samples_collapse_to_one_bucket(self):
        h = LatencyHistogram()
        for _ in range(1000):
            h.record(0.2)
        snap = h.snapshot()
        assert snap["p50"] == snap["p95"] == snap["p99"] == 0.2


class TestPerTenantLatency:
    def test_tenant_snapshot_carries_latency(self):
        m = ServiceMetrics()
        m.record_served("alice", from_cache=False,
                        queue_seconds=0.0, total_seconds=0.1)
        m.record_served("alice", from_cache=False,
                        queue_seconds=0.0, total_seconds=0.3)
        m.record_submitted("bob")  # bob never completed a query
        snap = m.snapshot()
        alice = snap["tenants"]["alice"]["latency"]
        assert alice["count"] == 2
        assert alice["mean"] == 0.2
        assert alice["min"] == 0.1 and alice["max"] == 0.3
        assert "latency" not in snap["tenants"]["bob"]

    def test_tenant_latencies_are_independent(self):
        m = ServiceMetrics()
        m.record_served("fast", False, 0.0, 0.001)
        m.record_served("slow", False, 0.0, 5.0)
        snap = m.snapshot()
        assert snap["tenants"]["fast"]["latency"]["p99"] < 0.01
        assert snap["tenants"]["slow"]["latency"]["p99"] == 5.0
        # the global histogram still sees both
        assert snap["latency"]["count"] == 2
