"""Service metrics: latency histograms, tenant counters, snapshots."""

from repro.serving.metrics import LatencyHistogram, ServiceMetrics, TenantStats


class TestLatencyHistogram:
    def test_empty(self):
        h = LatencyHistogram()
        snap = h.snapshot()
        assert snap["count"] == 0
        assert snap["p50"] == 0.0 and snap["p99"] == 0.0
        assert snap["mean"] == 0.0 and snap["min"] == 0.0

    def test_single_sample(self):
        h = LatencyHistogram()
        h.record(0.25)
        snap = h.snapshot()
        assert snap["count"] == 1
        assert snap["min"] == 0.25 and snap["max"] == 0.25
        # 0.25 is an exact bucket bound, and percentiles clamp to max
        assert snap["p50"] == 0.25 and snap["p99"] == 0.25

    def test_percentiles_are_monotone(self):
        h = LatencyHistogram()
        for i in range(1, 101):
            h.record(i / 100.0)
        snap = h.snapshot()
        assert snap["p50"] <= snap["p95"] <= snap["p99"] <= snap["max"]
        assert snap["p50"] >= 0.5  # median of U(0.01..1.0) lands near 0.5
        assert snap["p50"] <= 1.0

    def test_percentile_never_exceeds_observed_max(self):
        h = LatencyHistogram()
        h.record(0.0001)
        h.record(0.0003)
        assert h.percentile(0.99) <= h.max

    def test_mean_is_exact(self):
        h = LatencyHistogram()
        h.record(1.0)
        h.record(3.0)
        assert h.snapshot()["mean"] == 2.0

    def test_negative_durations_clamp_to_zero(self):
        h = LatencyHistogram()
        h.record(-1.0)
        assert h.min == 0.0
        assert h.count == 1


class TestTenantStats:
    def test_snapshot_keys(self):
        stats = TenantStats(submitted=3, served=2, cache_hits=1)
        snap = stats.snapshot()
        assert snap == {
            "submitted": 3, "served": 2, "cache_hits": 1,
            "shed": 0, "timed_out": 0, "failed": 0,
        }


class TestServiceMetrics:
    def test_per_tenant_flows(self):
        m = ServiceMetrics()
        m.record_submitted("alice")
        m.record_submitted("alice")
        m.record_submitted("bob")
        m.record_served("alice", from_cache=False,
                        queue_seconds=0.01, total_seconds=0.1)
        m.record_served("alice", from_cache=True,
                        queue_seconds=0.0, total_seconds=0.001)
        m.record_shed("bob")
        snap = m.snapshot()
        assert snap["tenants"]["alice"]["served"] == 2
        assert snap["tenants"]["alice"]["cache_hits"] == 1
        assert snap["tenants"]["bob"]["shed"] == 1
        assert snap["submitted"] == 3 and snap["served"] == 2
        assert snap["latency"]["count"] == 2

    def test_completed_counts_terminal_outcomes(self):
        m = ServiceMetrics()
        m.record_served("a", False, 0.0, 0.1)
        m.record_timed_out("a")
        m.record_failed("b")
        m.record_shed("b")  # shed is pre-admission, not "completed"
        assert m.snapshot()["completed"] == 3

    def test_totals_sum_across_tenants(self):
        m = ServiceMetrics()
        m.record_submitted("a")
        m.record_submitted("b")
        assert m.totals()["submitted"] == 2

    def test_log_line_mentions_key_figures(self):
        m = ServiceMetrics()
        m.record_served("a", from_cache=True,
                        queue_seconds=0.0, total_seconds=0.004)
        line = m.log_line(queue_depth=2, running=1)
        assert "served=1" in line
        assert "queued=2" in line
        assert "running=1" in line
        assert "result_cache_hit_rate=1.00" in line
