"""Async front end: loop bridging, backpressure shedding, lifecycle.

Backpressure scenarios use the gated StubEngine (execute parks on an
event), so "at capacity" states are constructed deterministically instead
of by racing the dispatcher.
"""

import asyncio

import pytest

from repro.config import ServiceConfig
from repro.errors import ServiceOverloadedError
from repro.lang import matrix_input
from repro.matrix import rand_dense
from repro.serving import AsyncMatrixService, MatrixService

from tests.serving.test_service import StubEngine

QUERY = matrix_input("X", 50, 50, 25) * 2.0


def make_async(engine=None, max_inflight=None, **options):
    options.setdefault("dispatch_poll_seconds", 0.005)
    return AsyncMatrixService(
        engine or StubEngine(),
        ServiceConfig(**options),
        max_inflight=max_inflight,
    )


def x_matrix(seed=1):
    return rand_dense(50, 50, 25, seed=seed)


def test_roundtrip_matches_sync_service():
    matrix = x_matrix()

    async def scenario():
        async with make_async(result_cache_entries=0) as service:
            session = service.open_session("alice").bind("X", matrix)
            return await asyncio.wait_for(session.execute(QUERY), timeout=10.0)

    served = asyncio.run(scenario())

    sync_service = MatrixService(
        StubEngine(), ServiceConfig(result_cache_entries=0)
    )
    try:
        sync_session = sync_service.open_session("alice").bind("X", matrix)
        reference = sync_session.execute(QUERY, timeout=10.0)
    finally:
        sync_service.close()
    assert (
        served.output().to_numpy() == reference.output().to_numpy()
    ).all()
    assert served.tenant == reference.tenant == "alice"


def test_gather_many_queries():
    async def scenario():
        config = ServiceConfig(
            num_replicas=2, result_cache_entries=0,
            dispatch_poll_seconds=0.005,
        )
        async with AsyncMatrixService(StubEngine(), config) as service:
            session = service.open_session("alice").bind("X", x_matrix())
            results = await asyncio.wait_for(
                asyncio.gather(*[session.execute(QUERY) for _ in range(8)]),
                timeout=30.0,
            )
            return results, service.status()

    results, status = asyncio.run(scenario())
    assert len(results) == 8
    assert status["served"] == 8
    # tenant affinity holds through the async path too
    assert len({r.replica for r in results}) == 1


def test_backpressure_sheds_before_the_queue():
    engine = StubEngine()
    engine.release.clear()

    async def scenario():
        async with make_async(
            engine, max_inflight=1, result_cache_entries=0
        ) as service:
            session = service.open_session("alice").bind("X", x_matrix())
            future = await session.submit(QUERY)
            # the single permit is held by the in-flight query
            with pytest.raises(ServiceOverloadedError):
                await session.submit(QUERY)
            status = service.status()
            engine.release.set()
            served = await asyncio.wait_for(future, timeout=10.0)
            return status, served

    status, served = asyncio.run(scenario())
    # the shed happened at the front door: the sync service never saw it
    assert status["submitted"] == 1
    assert status["shed"] == 0
    assert served.output() is not None


def test_shed_false_waits_for_a_permit():
    engine = StubEngine()
    engine.release.clear()

    async def scenario():
        async with make_async(
            engine, max_inflight=1, result_cache_entries=0
        ) as service:
            session = service.open_session("alice").bind("X", x_matrix())
            first = await session.submit(QUERY)
            waiter = asyncio.ensure_future(
                session.execute(QUERY, shed=False)
            )
            await asyncio.sleep(0.05)
            assert not waiter.done(), "shed=False must wait, not fail"
            engine.release.set()
            return (
                await asyncio.wait_for(first, timeout=10.0),
                await asyncio.wait_for(waiter, timeout=10.0),
            )

    first, second = asyncio.run(scenario())
    assert first.output() is not None
    assert second.output() is not None


def test_result_cache_hit_resolves_without_waiting():
    async def scenario():
        async with make_async() as service:
            session = service.open_session("alice").bind("X", x_matrix())
            miss = await asyncio.wait_for(
                session.execute(QUERY), timeout=10.0
            )
            hit = await asyncio.wait_for(session.execute(QUERY), timeout=10.0)
            return miss, hit

    miss, hit = asyncio.run(scenario())
    assert not miss.from_cache
    assert hit.from_cache


def test_failures_propagate_to_the_awaiter():
    engine = StubEngine(fail_with=RuntimeError("kernel exploded"))

    async def scenario():
        async with make_async(engine, result_cache_entries=0) as service:
            session = service.open_session("alice").bind("X", x_matrix())
            with pytest.raises(RuntimeError, match="kernel exploded"):
                await asyncio.wait_for(session.execute(QUERY), timeout=10.0)
            return service.status()

    status = asyncio.run(scenario())
    assert status["failed"] == 1


def test_close_during_inflight_drains():
    engine = StubEngine()
    engine.release.clear()

    async def scenario():
        service = make_async(engine, result_cache_entries=0)
        session = service.open_session("alice").bind("X", x_matrix())
        future = await session.submit(QUERY)
        engine.release.set()
        await service.close()
        await service.close()  # idempotent through the async path too
        assert service.closed
        return await asyncio.wait_for(future, timeout=10.0)

    served = asyncio.run(scenario())
    assert served.output() is not None


def test_wrapping_an_existing_sync_service():
    sync_service = MatrixService(
        StubEngine(), ServiceConfig(result_cache_entries=0)
    )

    async def scenario():
        service = AsyncMatrixService(service=sync_service)
        session = service.open_session("alice").bind("X", x_matrix())
        return await asyncio.wait_for(session.execute(QUERY), timeout=10.0)

    try:
        assert asyncio.run(scenario()).output() is not None
    finally:
        sync_service.close()


def test_engine_and_service_are_mutually_exclusive():
    sync_service = MatrixService(StubEngine())
    try:
        with pytest.raises(ValueError):
            AsyncMatrixService(StubEngine(), service=sync_service)
    finally:
        sync_service.close()


def test_semaphore_survives_back_to_back_loops():
    service = make_async(result_cache_entries=0)

    async def one(seed):
        session = service.open_session(f"tenant-{seed}").bind(
            "X", x_matrix(seed)
        )
        return await asyncio.wait_for(session.execute(QUERY), timeout=10.0)

    # two separate asyncio.run calls: the semaphore must rebind per loop
    assert asyncio.run(one(1)).output() is not None
    assert asyncio.run(one(2)).output() is not None
    asyncio.run(service.close())
