"""Tests for the Broadcast- and Replication-based Fused Operators.

Beyond correctness, these check the paper's Table 1 signatures: BFO's
communication scales with the number of tasks, RFO's with the block grid
extents, and BFO is the one that dies with O.O.M. when sides outgrow the
task budget.
"""

import numpy as np
import pytest

from repro.cluster import SimulatedCluster
from repro.core.plan import PartialFusionPlan
from repro.errors import TaskOutOfMemoryError
from repro.lang import DAG, evaluate, log, matrix_input, sum_of
from repro.matrix import rand_dense, rand_sparse
from repro.operators import BroadcastFusedOperator, ReplicationFusedOperator

from tests.conftest import make_config

BS = 25


def nmf_setting(density=0.05, rows=200, cols=150, k=50):
    xe = matrix_input("X", rows, cols, BS, density=density)
    ue = matrix_input("U", rows, k, BS)
    ve = matrix_input("V", cols, k, BS)
    expr = xe * log(ue @ ve.T + 1e-8)
    dag = DAG(expr.node)
    plan = PartialFusionPlan(set(dag.operators()), dag)
    inputs = {
        "X": rand_sparse(rows, cols, density, BS, seed=1),
        "U": rand_dense(rows, k, BS, seed=2),
        "V": rand_dense(cols, k, BS, seed=3),
    }
    expected = evaluate(dag.roots[0], {n: m.to_numpy() for n, m in inputs.items()})
    return plan, inputs, expected


class TestBFO:
    def test_correctness(self):
        plan, inputs, expected = nmf_setting()
        op = BroadcastFusedOperator(plan, make_config())
        cluster = SimulatedCluster(make_config())
        out = op.execute(cluster, inputs)
        np.testing.assert_allclose(out.to_numpy(), expected, atol=1e-8)

    def test_dense_main_correctness(self):
        plan, inputs, expected = nmf_setting(density=0.8)
        op = BroadcastFusedOperator(plan, make_config())
        out = op.execute(SimulatedCluster(make_config()), inputs)
        np.testing.assert_allclose(out.to_numpy(), expected, atol=1e-8)

    def test_main_source_is_largest(self):
        plan, inputs, _ = nmf_setting(density=0.8)
        op = BroadcastFusedOperator(plan, make_config())
        values = op._resolve_frontier(inputs)
        assert op.main_source(values).name == "X"

    def test_sparse_main_yields_few_partitions(self):
        """A very sparse X repartitions into few tasks (Section 6.2)."""
        plan, inputs, _ = nmf_setting(density=0.005)
        config = make_config(input_split_bytes=64 * 1024)
        op = BroadcastFusedOperator(plan, config)
        values = op._resolve_frontier(inputs)
        assert op.num_partitions(values) <= 2

    def test_comm_scales_with_tasks(self):
        """Table 1: BFO traffic = |X| + T * (|U| + |V|)."""
        plan, inputs, _ = nmf_setting(density=0.8)
        few = make_config(input_split_bytes=120_000)
        many = make_config(input_split_bytes=30_000)
        got = {}
        for name, config in (("few", few), ("many", many)):
            op = BroadcastFusedOperator(plan, config)
            cluster = SimulatedCluster(config)
            op.execute(cluster, inputs)
            values = op._resolve_frontier(inputs)
            got[name] = (
                cluster.metrics.consolidation_bytes,
                op.num_partitions(values),
            )
        sides = inputs["U"].nbytes + inputs["V"].nbytes
        for name in got:
            bytes_, tasks = got[name]
            expected = inputs["X"].nbytes + tasks * sides
            assert bytes_ == pytest.approx(expected, rel=0.01)
        assert got["many"][0] > got["few"][0]

    def test_oom_on_large_sides(self):
        plan, inputs, _ = nmf_setting()
        config = make_config(task_memory_budget=100_000)
        op = BroadcastFusedOperator(plan, config)
        with pytest.raises(TaskOutOfMemoryError):
            op.execute(SimulatedCluster(config), inputs)

    def test_agg_root(self):
        xe = matrix_input("X", 100, 75, BS, density=0.1)
        ue = matrix_input("U", 100, 25, BS)
        ve = matrix_input("V", 75, 25, BS)
        expr = sum_of(xe * (ue @ ve.T))
        dag = DAG(expr.node)
        plan = PartialFusionPlan(set(dag.operators()), dag)
        inputs = {
            "X": rand_sparse(100, 75, 0.1, BS, seed=1),
            "U": rand_dense(100, 25, BS, seed=2),
            "V": rand_dense(75, 25, BS, seed=3),
        }
        expected = evaluate(dag.roots[0], {n: m.to_numpy() for n, m in inputs.items()})
        out = BroadcastFusedOperator(plan, make_config()).execute(
            SimulatedCluster(make_config()), inputs
        )
        assert out.to_numpy()[0, 0] == pytest.approx(expected[0, 0])


class TestRFO:
    def test_correctness(self):
        plan, inputs, expected = nmf_setting()
        op = ReplicationFusedOperator(plan, make_config())
        out = op.execute(SimulatedCluster(make_config()), inputs)
        np.testing.assert_allclose(out.to_numpy(), expected, atol=1e-8)

    def test_pinned_to_grid_corner(self):
        plan, inputs, _ = nmf_setting()
        op = ReplicationFusedOperator(plan, make_config())
        assert op.pqr == (8, 6, 1)  # (I, J, 1)

    def test_comm_matches_table1(self):
        """Table 1: RFO traffic = |X| + J*|U| + I*|V|."""
        plan, inputs, _ = nmf_setting(density=0.8)
        config = make_config()
        op = ReplicationFusedOperator(plan, config)
        cluster = SimulatedCluster(config)
        op.execute(cluster, inputs)
        expected = (
            inputs["X"].nbytes + 6 * inputs["U"].nbytes + 8 * inputs["V"].nbytes
        )
        assert cluster.metrics.consolidation_bytes == pytest.approx(
            expected, rel=0.01
        )

    def test_rfo_traffic_exceeds_bfo_on_large_grids(self):
        plan, inputs, _ = nmf_setting(density=0.8)
        config = make_config(input_split_bytes=1 << 30)  # BFO: 1 task
        bfo_cluster = SimulatedCluster(config)
        BroadcastFusedOperator(plan, config).execute(bfo_cluster, inputs)
        rfo_cluster = SimulatedCluster(config)
        ReplicationFusedOperator(plan, config).execute(rfo_cluster, inputs)
        assert (
            rfo_cluster.metrics.consolidation_bytes
            > bfo_cluster.metrics.consolidation_bytes
        )

    def test_rfo_survives_budget_that_kills_bfo(self):
        plan, inputs, expected = nmf_setting()
        config = make_config(task_memory_budget=100_000)
        out = ReplicationFusedOperator(plan, config).execute(
            SimulatedCluster(config), inputs
        )
        np.testing.assert_allclose(out.to_numpy(), expected, atol=1e-8)
