"""Tests for Multi-aggregation fusion (Figure 2(d))."""

import numpy as np
import pytest

from repro import FuseMEEngine, SystemDSLikeEngine
from repro.cluster import SimulatedCluster
from repro.core.plan import MultiAggPlan, PartialFusionPlan
from repro.errors import PlanError
from repro.lang import DAG, colsum, matrix_input, rowsum, sum_of
from repro.matrix import rand_dense, rand_sparse
from repro.operators.multi_agg import MultiAggregationOperator

from tests.conftest import make_config

BS = 25
M, N = 100, 75


@pytest.fixture
def data():
    return {
        "X": rand_sparse(M, N, 0.1, BS, seed=1),
        "U": rand_dense(M, N, BS, seed=2),
        "V": rand_dense(M, N, BS, seed=3),
    }


def exprs():
    x = matrix_input("X", M, N, BS, density=0.1)
    u = matrix_input("U", M, N, BS)
    v = matrix_input("V", M, N, BS)
    return x, u, v


class TestPlanConstruction:
    def test_figure2d_pattern(self, data):
        x, u, v = exprs()
        dag = DAG([sum_of(u * x).node, sum_of(x * v).node])
        plan = MultiAggPlan({n for n in dag.nodes() if n.is_operator}, dag)
        assert len(plan.roots) == 2
        assert plan.label().startswith("MultiAgg")

    def test_single_root_rejected(self, data):
        x, u, v = exprs()
        dag = DAG(sum_of(u * x).node)
        with pytest.raises(PlanError, match="at least 2 roots"):
            MultiAggPlan({n for n in dag.nodes() if n.is_operator}, dag)

    def test_non_agg_roots_rejected(self, data):
        x, u, v = exprs()
        dag = DAG([(u * x).node, (x * v).node])
        with pytest.raises(PlanError, match="aggregate"):
            MultiAggPlan({n for n in dag.nodes() if n.is_operator}, dag)


class TestOperator:
    def run(self, dag, data, config=None):
        config = config or make_config()
        plan = MultiAggPlan({n for n in dag.nodes() if n.is_operator}, dag)
        op = MultiAggregationOperator(plan, config)
        cluster = SimulatedCluster(config)
        outputs = op.execute(cluster, data)
        return plan, outputs, cluster

    def test_figure2d_values(self, data):
        x, u, v = exprs()
        dag = DAG([sum_of(u * x).node, sum_of(x * v).node])
        plan, outputs, _ = self.run(dag, data)
        xn, un, vn = (data[k].to_numpy() for k in ("X", "U", "V"))
        assert outputs[plan.roots[0]].to_numpy()[0, 0] == pytest.approx(
            (un * xn).sum()
        )
        assert outputs[plan.roots[1]].to_numpy()[0, 0] == pytest.approx(
            (xn * vn).sum()
        )

    def test_mixed_axes(self, data):
        x, u, v = exprs()
        dag = DAG([rowsum(u * x).node, colsum(x * v).node])
        plan, outputs, _ = self.run(dag, data)
        xn, un, vn = (data[k].to_numpy() for k in ("X", "U", "V"))
        np.testing.assert_allclose(
            outputs[plan.roots[0]].to_numpy(),
            (un * xn).sum(axis=1, keepdims=True),
        )
        np.testing.assert_allclose(
            outputs[plan.roots[1]].to_numpy(),
            (xn * vn).sum(axis=0, keepdims=True),
        )

    def test_shared_input_moves_once(self, data):
        """The whole point: X is scanned once for both aggregations."""
        x, u, v = exprs()
        dag = DAG([sum_of(u * x).node, sum_of(x * v).node])
        _, _, fused_cluster = self.run(dag, data)
        # run separately for comparison
        config = make_config()
        separate = SimulatedCluster(config)
        for expr in (sum_of(u * x), sum_of(x * v)):
            sub = DAG(expr.node)
            plan = PartialFusionPlan(set(sub.operators()), sub)
            from repro.operators.cell import FusedCellOperator

            FusedCellOperator(plan, config).execute(separate, data)
        saved = (
            separate.metrics.consolidation_bytes
            - fused_cluster.metrics.consolidation_bytes
        )
        assert saved == pytest.approx(data["X"].nbytes, rel=0.05)

    def test_matmul_plans_rejected(self, data):
        x, u, v = exprs()
        w = matrix_input("W", N, M, BS)
        dag = DAG([sum_of(u @ w).node, sum_of(x * v).node])
        nodes = {n for n in dag.nodes() if n.is_operator}
        plan = MultiAggPlan(nodes, dag)
        with pytest.raises(PlanError, match="element-wise"):
            MultiAggregationOperator(plan, make_config())


class TestEngineIntegration:
    @pytest.mark.parametrize("engine_cls", [FuseMEEngine, SystemDSLikeEngine])
    def test_engines_fuse_and_agree(self, data, engine_cls):
        x, u, v = exprs()
        query = [sum_of(u * x), sum_of(x * v)]
        result = engine_cls(make_config()).execute(query, data)
        multi = [
            unit for unit in result.fusion_plan.units
            if isinstance(unit.plan, MultiAggPlan)
        ]
        assert len(multi) == 1
        xn, un, vn = (data[k].to_numpy() for k in ("X", "U", "V"))
        roots = list(result.dag.roots)
        assert result.outputs[roots[0]].to_numpy()[0, 0] == pytest.approx(
            (un * xn).sum()
        )
        assert result.outputs[roots[1]].to_numpy()[0, 0] == pytest.approx(
            (xn * vn).sum()
        )

    def test_unrelated_aggregations_stay_separate(self, data):
        """No shared input -> no multi-aggregation fusion."""
        x, u, v = exprs()
        query = [sum_of(u * 2.0), sum_of(v * 3.0)]
        result = FuseMEEngine(make_config()).execute(query, data)
        multi = [
            unit for unit in result.fusion_plan.units
            if isinstance(unit.plan, MultiAggPlan)
        ]
        assert not multi
