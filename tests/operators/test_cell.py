"""Tests for the Cell-fused operator (matmul-free plans, single ops)."""

import numpy as np
import pytest

from repro.cluster import SimulatedCluster
from repro.core.plan import PartialFusionPlan
from repro.errors import PlanError
from repro.lang import DAG, colsum, evaluate, matrix_input, rowsum, sum_of
from repro.matrix import rand_dense, rand_sparse
from repro.operators import FusedCellOperator

from tests.conftest import make_config

BS = 25


def run(expr, inputs, config=None):
    config = config or make_config()
    dag = DAG(expr.node)
    plan = PartialFusionPlan(set(dag.operators()), dag)
    op = FusedCellOperator(plan, config)
    cluster = SimulatedCluster(config)
    out = op.execute(cluster, inputs)
    expected = evaluate(dag.roots[0], {k: m.to_numpy() for k, m in inputs.items()})
    return out, expected, cluster


@pytest.fixture
def xy():
    return {
        "X": rand_sparse(100, 75, 0.1, BS, seed=1),
        "Y": rand_dense(100, 75, BS, seed=2),
    }


class TestElementwise:
    def test_chain(self, xy):
        x = matrix_input("X", 100, 75, BS, density=0.1)
        y = matrix_input("Y", 100, 75, BS)
        out, expected, _ = run(x * y + 2.0, xy)
        np.testing.assert_allclose(out.to_numpy(), expected)

    def test_scalar_only(self, xy):
        x = matrix_input("X", 100, 75, BS, density=0.1)
        out, expected, _ = run(1.0 / (x + 1.0), xy)
        np.testing.assert_allclose(out.to_numpy(), expected)

    def test_single_unary(self, xy):
        x = matrix_input("X", 100, 75, BS, density=0.1)
        out, expected, _ = run(x ** 2, xy)
        np.testing.assert_allclose(out.to_numpy(), expected)

    def test_sparse_result_stays_sparse(self, xy):
        x = matrix_input("X", 100, 75, BS, density=0.1)
        y = matrix_input("Y", 100, 75, BS)
        out, expected, _ = run(x * y, xy)
        assert out.nbytes < 100 * 75 * 8 / 2

    def test_transpose_inside_chain(self, xy):
        x = matrix_input("X", 100, 75, BS, density=0.1)
        y = matrix_input("Y", 100, 75, BS)
        out, expected, _ = run((x * y).T, xy)
        np.testing.assert_allclose(out.to_numpy(), expected)

    def test_single_transpose(self, xy):
        x = matrix_input("X", 100, 75, BS, density=0.1)
        out, expected, _ = run(x.T, xy)
        np.testing.assert_allclose(out.to_numpy(), expected)

    def test_transpose_of_transpose_combination(self, xy):
        x = matrix_input("X", 100, 75, BS, density=0.1)
        y = matrix_input("Y", 100, 75, BS)
        out, expected, _ = run(x.T * y.T, xy)
        np.testing.assert_allclose(out.to_numpy(), expected)

    def test_ragged_grid(self):
        inputs = {"X": rand_dense(90, 65, BS, seed=3)}
        x = matrix_input("X", 90, 65, BS)
        out, expected, _ = run(x * 3.0 - 1.0, inputs)
        np.testing.assert_allclose(out.to_numpy(), expected)


class TestAggregationRoots:
    def test_sum(self, xy):
        x = matrix_input("X", 100, 75, BS, density=0.1)
        out, expected, _ = run(sum_of(x * 2.0), xy)
        assert out.to_numpy()[0, 0] == pytest.approx(expected[0, 0])

    def test_rowsum(self, xy):
        x = matrix_input("X", 100, 75, BS, density=0.1)
        y = matrix_input("Y", 100, 75, BS)
        out, expected, _ = run(rowsum(x * y), xy)
        np.testing.assert_allclose(out.to_numpy(), expected)

    def test_colsum(self, xy):
        x = matrix_input("X", 100, 75, BS, density=0.1)
        out, expected, _ = run(colsum(x), xy)
        np.testing.assert_allclose(out.to_numpy(), expected)

    def test_aggregation_shuffle_accounted(self, xy):
        x = matrix_input("X", 100, 75, BS, density=0.1)
        _, _, cluster = run(sum_of(x * 2.0), xy)
        assert cluster.metrics.aggregation_bytes > 0


class TestGuards:
    def test_matmul_plan_rejected(self, xy):
        x = matrix_input("X", 100, 75, BS, density=0.1)
        w = matrix_input("W", 75, 10, BS)
        dag = DAG((x @ w).node)
        plan = PartialFusionPlan(set(dag.operators()), dag)
        with pytest.raises(PlanError):
            FusedCellOperator(plan, make_config())

    def test_consolidation_counted_once_per_block(self, xy):
        """X consumed twice in the same expression is received once."""
        x = matrix_input("X", 100, 75, BS, density=0.1)
        _, _, once = run(x * 2.0, xy)
        _, _, twice = run(x * x, xy)
        assert twice.metrics.consolidation_bytes == pytest.approx(
            once.metrics.consolidation_bytes, rel=0.01
        )
