"""Tests for standalone distributed matrix multiplication strategies."""

import numpy as np
import pytest

from repro.cluster import SimulatedCluster
from repro.lang import DAG, matrix_input
from repro.matrix import rand_dense, rand_sparse
from repro.operators import BroadcastMatMul, CuboidMatMul, ReplicationMatMul

from tests.conftest import make_config

BS = 25


@pytest.fixture
def setting():
    a = rand_dense(200, 100, BS, seed=1)
    b = rand_dense(100, 150, BS, seed=2)
    ae = matrix_input("A", 200, 100, BS)
    be = matrix_input("B", 100, 150, BS)
    dag = DAG((ae @ be).node)
    node = dag.matmul_nodes()[0]
    expected = a.to_numpy() @ b.to_numpy()
    return dag, node, {"A": a, "B": b}, expected


class TestStrategies:
    def test_broadcast(self, setting):
        dag, node, inputs, expected = setting
        out = BroadcastMatMul(node, dag, make_config()).execute(
            SimulatedCluster(make_config()), inputs
        )
        np.testing.assert_allclose(out.to_numpy(), expected, atol=1e-8)

    def test_replication(self, setting):
        dag, node, inputs, expected = setting
        out = ReplicationMatMul(node, dag, make_config()).execute(
            SimulatedCluster(make_config()), inputs
        )
        np.testing.assert_allclose(out.to_numpy(), expected, atol=1e-8)

    def test_cuboid(self, setting):
        dag, node, inputs, expected = setting
        out = CuboidMatMul(node, dag, make_config()).execute(
            SimulatedCluster(make_config()), inputs
        )
        np.testing.assert_allclose(out.to_numpy(), expected, atol=1e-8)

    def test_cuboid_with_fixed_pqr(self, setting):
        dag, node, inputs, expected = setting
        op = CuboidMatMul(node, dag, make_config(), pqr=(4, 3, 2))
        out = op.execute(SimulatedCluster(make_config()), inputs)
        np.testing.assert_allclose(out.to_numpy(), expected, atol=1e-8)

    def test_sparse_operand(self, setting):
        dag, node, inputs, expected = setting
        sparse_a = rand_sparse(200, 100, 0.05, BS, seed=3)
        inputs = {"A": sparse_a, "B": inputs["B"]}
        expected = sparse_a.to_numpy() @ inputs["B"].to_numpy()
        out = CuboidMatMul(node, dag, make_config()).execute(
            SimulatedCluster(make_config()), inputs
        )
        np.testing.assert_allclose(out.to_numpy(), expected, atol=1e-8)

    def test_cuboid_cheaper_than_replication_on_common_dim(self):
        """With a large common dimension, k-partitioning pays off — the
        DistME argument the CFO inherits."""
        a = rand_dense(100, 300, BS, seed=1)
        b = rand_dense(300, 100, BS, seed=2)
        ae = matrix_input("A", 100, 300, BS)
        be = matrix_input("B", 300, 100, BS)
        dag = DAG((ae @ be).node)
        node = dag.matmul_nodes()[0]
        config = make_config()
        inputs = {"A": a, "B": b}
        cub = SimulatedCluster(config)
        CuboidMatMul(node, dag, config).execute(cub, inputs)
        rep = SimulatedCluster(config)
        ReplicationMatMul(node, dag, config).execute(rep, inputs)
        assert cub.metrics.comm_bytes < rep.metrics.comm_bytes

    def test_non_matmul_node_rejected(self):
        from repro.errors import PlanError

        x = matrix_input("X", 100, 100, BS)
        dag = DAG((x * 2.0).node)
        with pytest.raises(PlanError):
            CuboidMatMul(dag.roots[0], dag, make_config())
