"""Unit tests for BlockedMatrix."""

import numpy as np
import pytest

from repro.blocks import Block
from repro.errors import BlockLayoutError
from repro.matrix import BlockedMatrix, MatrixMeta, from_numpy, rand_sparse

from tests.conftest import assert_matrix_close


def checkerboard(rows=75, cols=50, bs=25) -> tuple[BlockedMatrix, np.ndarray]:
    arr = np.arange(rows * cols, dtype=float).reshape(rows, cols)
    return from_numpy(arr, block_size=bs), arr


class TestBasics:
    def test_zero_matrix_stores_nothing(self):
        m = BlockedMatrix(MatrixMeta(100, 100, 25, density=0.0))
        assert m.num_stored_blocks == 0
        assert m.nnz == 0

    def test_get_block_materializes_zero(self):
        m = BlockedMatrix(MatrixMeta(100, 100, 25, density=0.0))
        block = m.get_block(1, 2)
        assert block.shape == (25, 25)
        assert block.nnz == 0

    def test_set_block_validates_shape(self):
        m = BlockedMatrix(MatrixMeta(100, 100, 25))
        with pytest.raises(BlockLayoutError):
            m.set_block(0, 0, Block(np.zeros((10, 25))))

    def test_ragged_edge_block_shape(self):
        m, arr = checkerboard(rows=60, cols=60, bs=25)
        assert m.get_block(2, 2).shape == (10, 10)

    def test_nnz_and_density(self):
        m = rand_sparse(100, 100, 0.1, block_size=25, seed=0)
        assert m.nnz == pytest.approx(1000, rel=0.3)
        assert m.density == pytest.approx(0.1, rel=0.3)

    def test_iter_blocks_sorted(self):
        m, _ = checkerboard()
        keys = [k for k, _ in m.iter_blocks()]
        assert keys == sorted(keys)

    def test_constructor_validates_blocks(self):
        meta = MatrixMeta(50, 50, 25)
        with pytest.raises(BlockLayoutError):
            BlockedMatrix(meta, {(0, 0): Block(np.zeros((10, 10)))})


class TestConversion:
    def test_round_trip_dense(self):
        m, arr = checkerboard()
        assert_matrix_close(m, arr)

    def test_to_scipy(self):
        m = rand_sparse(60, 40, 0.1, block_size=25, seed=1)
        np.testing.assert_allclose(
            np.asarray(m.to_scipy().todense()), m.to_numpy()
        )

    def test_to_scipy_empty(self):
        m = BlockedMatrix(MatrixMeta(10, 10, 25, density=0.0))
        assert m.to_scipy().nnz == 0

    def test_as_single_block_sparse_choice(self):
        m = rand_sparse(100, 100, 0.01, block_size=25, seed=2)
        assert m.as_single_block().is_sparse

    def test_as_single_block_dense_choice(self):
        m, arr = checkerboard()
        block = m.as_single_block()
        assert not block.is_sparse
        np.testing.assert_allclose(block.to_numpy(), arr)

    def test_as_single_block_empty(self):
        m = BlockedMatrix(MatrixMeta(10, 10, 25, density=0.0))
        assert m.as_single_block().nnz == 0


class TestStructure:
    def test_transpose(self):
        m, arr = checkerboard()
        assert_matrix_close(m.transpose(), arr.T)

    def test_transpose_ragged(self):
        m, arr = checkerboard(rows=60, cols=85, bs=25)
        assert_matrix_close(m.transpose(), arr.T)

    def test_block_slice_values(self):
        m, arr = checkerboard(rows=100, cols=100, bs=25)
        piece = m.block_slice((1, 3), (0, 2))
        assert_matrix_close(piece, arr[25:75, 0:50])

    def test_block_slice_full(self):
        m, arr = checkerboard()
        assert_matrix_close(m.block_slice((0, 3), (0, 2)), arr)

    def test_block_slice_out_of_range(self):
        m, _ = checkerboard()
        with pytest.raises(BlockLayoutError):
            m.block_slice((0, 99), (0, 1))

    def test_block_slice_preserves_block_size(self):
        m, _ = checkerboard()
        assert m.block_slice((0, 1), (0, 1)).block_size == 25

    def test_refreshed_meta_tracks_actual_density(self):
        m = rand_sparse(100, 100, 0.05, block_size=25, seed=3)
        refreshed = m.refreshed_meta()
        assert refreshed.density == pytest.approx(m.density)

    def test_allclose_detects_difference(self):
        a, arr = checkerboard()
        b = from_numpy(arr + 1.0, block_size=25)
        assert not a.allclose(b)
        assert a.allclose(from_numpy(arr, block_size=25))
