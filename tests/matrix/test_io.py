"""Round-trip tests for the npz block store."""

import numpy as np
import pytest

from repro.errors import DataError
from repro.matrix import from_numpy, rand_dense, rand_sparse, zeros
from repro.matrix.io import (
    load_matrix,
    load_matrix_dir,
    save_matrix,
    save_matrix_dir,
)


class TestRoundTrip:
    def test_dense(self, tmp_path):
        m = rand_dense(75, 50, 25, seed=0)
        path = tmp_path / "dense.npz"
        save_matrix(m, path)
        assert load_matrix(path).allclose(m)

    def test_sparse(self, tmp_path):
        m = rand_sparse(100, 100, 0.05, 25, seed=1)
        path = tmp_path / "sparse.npz"
        save_matrix(m, path)
        loaded = load_matrix(path)
        assert loaded.allclose(m)

    def test_representation_preserved(self, tmp_path):
        m = rand_sparse(100, 100, 0.05, 25, seed=1)
        path = tmp_path / "sparse.npz"
        save_matrix(m, path)
        loaded = load_matrix(path)
        for key, block in m.iter_blocks():
            assert loaded.blocks[key].is_sparse == block.is_sparse

    def test_empty_matrix(self, tmp_path):
        m = zeros(50, 50, 25)
        path = tmp_path / "empty.npz"
        save_matrix(m, path)
        loaded = load_matrix(path)
        assert loaded.nnz == 0
        assert loaded.shape == (50, 50)

    def test_meta_preserved(self, tmp_path):
        m = rand_sparse(100, 80, 0.1, 20, seed=2)
        path = tmp_path / "m.npz"
        save_matrix(m, path)
        loaded = load_matrix(path)
        assert loaded.meta.block_size == 20
        assert loaded.shape == (100, 80)

    def test_ragged_blocks(self, tmp_path):
        arr = np.random.default_rng(0).normal(size=(53, 37))
        m = from_numpy(arr, block_size=25)
        path = tmp_path / "ragged.npz"
        save_matrix(m, path)
        np.testing.assert_allclose(load_matrix(path).to_numpy(), arr)


class TestDirectoryStore:
    def test_round_trip(self, tmp_path):
        m = rand_sparse(175, 120, 0.1, 25, seed=4)
        store = tmp_path / "store"
        save_matrix_dir(m, store, rows_per_partition=3)
        assert load_matrix_dir(store).allclose(m)

    def test_manifest_lists_partitions(self, tmp_path):
        import json

        m = rand_dense(175, 50, 25, seed=5)  # 7 block rows
        store = tmp_path / "store"
        save_matrix_dir(m, store, rows_per_partition=3)
        manifest = json.loads((store / "manifest.json").read_text())
        assert len(manifest["partitions"]) == 3  # ceil(7 / 3)
        stops = [p["block_row_stop"] for p in manifest["partitions"]]
        assert stops[-1] == 7

    def test_partition_files_exist(self, tmp_path):
        m = rand_dense(100, 50, 25, seed=6)
        store = tmp_path / "store"
        save_matrix_dir(m, store, rows_per_partition=2)
        parts = sorted(p.name for p in store.glob("part-*.npz"))
        assert parts == ["part-00000.npz", "part-00001.npz"]

    def test_overwrite_existing_store(self, tmp_path):
        store = tmp_path / "store"
        save_matrix_dir(rand_dense(50, 50, 25, seed=0), store)
        second = rand_dense(100, 25, 25, seed=1)
        save_matrix_dir(second, store)
        assert load_matrix_dir(store).allclose(second)

    def test_refuses_to_replace_non_store(self, tmp_path):
        target = tmp_path / "notastore"
        target.mkdir()
        (target / "precious.txt").write_text("data")
        with pytest.raises(DataError, match="refusing"):
            save_matrix_dir(rand_dense(50, 50, 25, seed=0), target)

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(DataError, match="manifest"):
            load_matrix_dir(tmp_path)

    def test_bad_rows_per_partition(self, tmp_path):
        with pytest.raises(DataError):
            save_matrix_dir(rand_dense(50, 50, 25, seed=0),
                            tmp_path / "s", rows_per_partition=0)

    def test_empty_matrix(self, tmp_path):
        store = tmp_path / "store"
        save_matrix_dir(zeros(75, 75, 25), store)
        loaded = load_matrix_dir(store)
        assert loaded.nnz == 0
        assert loaded.shape == (75, 75)


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(DataError):
            load_matrix(tmp_path / "nope.npz")

    def test_not_a_block_store(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, stuff=np.zeros(3))
        with pytest.raises(DataError):
            load_matrix(path)

    def test_overwrite(self, tmp_path):
        path = tmp_path / "m.npz"
        save_matrix(rand_dense(25, 25, 25, seed=0), path)
        second = rand_dense(50, 50, 25, seed=1)
        save_matrix(second, path)
        assert load_matrix(path).allclose(second)
