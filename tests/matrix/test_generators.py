"""Unit and property tests for matrix generators."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.errors import DataError
from repro.matrix import (
    from_numpy,
    from_scipy,
    identity,
    ones,
    rand_dense,
    rand_sparse,
    zeros,
)


class TestConversions:
    def test_from_numpy_round_trip(self):
        arr = np.random.default_rng(0).normal(size=(73, 41))
        m = from_numpy(arr, block_size=20)
        np.testing.assert_allclose(m.to_numpy(), arr)

    def test_from_numpy_skips_zero_blocks(self):
        arr = np.zeros((50, 50))
        arr[0, 0] = 1.0
        m = from_numpy(arr, block_size=25)
        assert m.num_stored_blocks == 1

    def test_from_scipy_round_trip(self):
        csr = sp.random(80, 60, density=0.05, format="csr", random_state=1)
        m = from_scipy(csr, block_size=25)
        np.testing.assert_allclose(m.to_numpy(), np.asarray(csr.todense()))

    def test_from_scipy_blocks_are_sparse(self):
        csr = sp.random(80, 60, density=0.05, format="csr", random_state=1)
        m = from_scipy(csr, block_size=25)
        assert all(b.is_sparse for _, b in m.iter_blocks())

    def test_from_scipy_empty(self):
        m = from_scipy(sp.csr_matrix((30, 30)), block_size=25)
        assert m.num_stored_blocks == 0


class TestConstants:
    def test_zeros(self):
        assert zeros(40, 40, 25).nnz == 0

    def test_ones(self):
        m = ones(40, 30, 25)
        assert m.to_numpy().sum() == 40 * 30

    def test_identity(self):
        m = identity(60, 25)
        np.testing.assert_allclose(m.to_numpy(), np.eye(60))

    def test_identity_stores_only_diagonal_blocks(self):
        m = identity(75, 25)
        assert m.num_stored_blocks == 3


class TestRandom:
    def test_rand_dense_reproducible(self):
        a = rand_dense(50, 50, 25, seed=7)
        b = rand_dense(50, 50, 25, seed=7)
        assert a.allclose(b)

    def test_rand_dense_seed_changes_values(self):
        a = rand_dense(50, 50, 25, seed=7)
        b = rand_dense(50, 50, 25, seed=8)
        assert not a.allclose(b)

    def test_rand_dense_range(self):
        arr = rand_dense(50, 50, 25, seed=0, low=2.0, high=3.0).to_numpy()
        assert arr.min() >= 2.0 and arr.max() < 3.0

    def test_rand_dense_invalid_range(self):
        with pytest.raises(DataError):
            rand_dense(10, 10, 25, low=1.0, high=1.0)

    def test_rand_sparse_density(self):
        m = rand_sparse(200, 200, 0.05, 25, seed=0)
        assert m.density == pytest.approx(0.05, rel=0.25)

    def test_rand_sparse_reproducible(self):
        a = rand_sparse(100, 100, 0.1, 25, seed=3)
        b = rand_sparse(100, 100, 0.1, 25, seed=3)
        assert a.allclose(b)

    def test_rand_sparse_zero_density(self):
        assert rand_sparse(100, 100, 0.0, 25).nnz == 0

    def test_rand_sparse_full_density_is_dense(self):
        m = rand_sparse(50, 50, 1.0, 25, seed=0)
        assert m.nnz == 2500

    def test_rand_sparse_high_density_path(self):
        m = rand_sparse(100, 100, 0.7, 25, seed=0)
        assert m.density == pytest.approx(0.7, rel=0.15)

    def test_rand_sparse_invalid_density(self):
        with pytest.raises(DataError):
            rand_sparse(10, 10, 1.5, 25)

    def test_values_never_exactly_zero(self):
        m = rand_sparse(100, 100, 0.2, 25, seed=0, low=0.1, high=1.0)
        stored = np.concatenate(
            [b.to_sparse().data.data for _, b in m.iter_blocks()]
        )
        assert np.all(stored != 0.0)


@settings(max_examples=30, deadline=None)
@given(
    st.integers(1, 120), st.integers(1, 120),
    st.sampled_from([10, 25, 64]),
)
def test_from_numpy_round_trip_property(rows, cols, bs):
    arr = np.random.default_rng(rows * 1000 + cols).normal(size=(rows, cols))
    np.testing.assert_allclose(from_numpy(arr, bs).to_numpy(), arr)


@settings(max_examples=30, deadline=None)
@given(st.integers(10, 80), st.floats(0.0, 0.4), st.integers(0, 5))
def test_rand_sparse_nnz_bounded(n, density, seed):
    m = rand_sparse(n, n, density, 25, seed=seed)
    assert 0 <= m.nnz <= n * n
    assert m.to_numpy().shape == (n, n)
