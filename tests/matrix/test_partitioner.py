"""Unit tests for block partitioners."""

import pytest

from repro.matrix import ColumnPartitioner, GridPartitioner, RowPartitioner


class TestRowPartitioner:
    def test_same_row_same_partition(self):
        p = RowPartitioner(4)
        assert p.partition((2, 0)) == p.partition((2, 9))

    def test_wraps_modulo(self):
        p = RowPartitioner(4)
        assert p.partition((6, 0)) == p.partition((2, 3))

    def test_range(self):
        p = RowPartitioner(3)
        for i in range(10):
            assert 0 <= p.partition((i, 0)) < 3

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            RowPartitioner(0)


class TestColumnPartitioner:
    def test_same_col_same_partition(self):
        p = ColumnPartitioner(5)
        assert p.partition((0, 3)) == p.partition((7, 3))

    def test_differs_from_row(self):
        rp, cp = RowPartitioner(4), ColumnPartitioner(4)
        assert rp.partition((1, 2)) != cp.partition((1, 2))


class TestGridPartitioner:
    def test_num_partitions(self):
        assert GridPartitioner(3, 4).num_partitions == 12

    def test_neighbourhood_spread(self):
        p = GridPartitioner(2, 2)
        ids = {p.partition((i, j)) for i in range(2) for j in range(2)}
        assert ids == {0, 1, 2, 3}

    def test_tiles_repeat(self):
        p = GridPartitioner(2, 3)
        assert p.partition((0, 0)) == p.partition((2, 3))

    def test_equality_and_hash(self):
        assert GridPartitioner(2, 3) == GridPartitioner(2, 3)
        assert GridPartitioner(2, 3) != GridPartitioner(3, 2)
        assert hash(GridPartitioner(2, 3)) == hash(GridPartitioner(2, 3))

    def test_row_vs_column_not_equal(self):
        assert RowPartitioner(4) != ColumnPartitioner(4)

    def test_invalid(self):
        with pytest.raises(ValueError):
            GridPartitioner(0, 3)
