"""Unit tests for MatrixMeta: blocking arithmetic and size estimation."""

import pytest

from repro.errors import MatrixShapeError
from repro.matrix import MatrixMeta


class TestBlocking:
    def test_exact_grid(self):
        meta = MatrixMeta(200, 300, block_size=100)
        assert meta.block_grid == (2, 3)
        assert meta.num_blocks == 6

    def test_ragged_grid(self):
        meta = MatrixMeta(250, 301, block_size=100)
        assert meta.block_grid == (3, 4)

    def test_block_dims_interior(self):
        meta = MatrixMeta(250, 301, block_size=100)
        assert meta.block_dims(0, 0) == (100, 100)

    def test_block_dims_ragged_edge(self):
        meta = MatrixMeta(250, 301, block_size=100)
        assert meta.block_dims(2, 3) == (50, 1)

    def test_block_dims_out_of_range(self):
        with pytest.raises(IndexError):
            MatrixMeta(100, 100, 100).block_dims(1, 0)

    def test_block_row_range_clipped(self):
        meta = MatrixMeta(250, 100, block_size=100)
        assert meta.block_row_range(2) == (200, 250)

    def test_block_col_range(self):
        meta = MatrixMeta(100, 250, block_size=100)
        assert meta.block_col_range(1) == (100, 200)

    def test_invalid_dimensions(self):
        with pytest.raises(MatrixShapeError):
            MatrixMeta(0, 10)

    def test_invalid_density(self):
        with pytest.raises(ValueError):
            MatrixMeta(10, 10, density=1.5)


class TestSizeEstimation:
    def test_dense_bytes(self):
        meta = MatrixMeta(100, 100, density=1.0)
        assert meta.estimated_bytes == 100 * 100 * 8

    def test_sparse_bytes_scale_with_nnz(self):
        meta = MatrixMeta(1000, 1000, density=0.01)
        assert meta.estimated_bytes == pytest.approx(1000 * 1000 * 0.01 * 12, rel=0.01)

    def test_sparse_cheaper_than_dense(self):
        sparse = MatrixMeta(1000, 1000, density=0.001)
        dense = MatrixMeta(1000, 1000, density=1.0)
        assert sparse.estimated_bytes < dense.estimated_bytes / 50

    def test_estimated_nnz(self):
        assert MatrixMeta(100, 100, density=0.5).estimated_nnz == 5000


class TestDerivedMetas:
    def test_transposed(self):
        meta = MatrixMeta(100, 250, block_size=100, density=0.3)
        t = meta.transposed()
        assert t.shape == (250, 100)
        assert t.density == 0.3

    def test_matmul_meta_shape(self):
        a = MatrixMeta(100, 200, 100)
        b = MatrixMeta(200, 300, 100)
        assert a.matmul_meta(b).shape == (100, 300)

    def test_matmul_meta_rejects_mismatch(self):
        with pytest.raises(MatrixShapeError):
            MatrixMeta(10, 20).matmul_meta(MatrixMeta(30, 10))

    def test_matmul_meta_rejects_block_size_mismatch(self):
        with pytest.raises(MatrixShapeError):
            MatrixMeta(10, 20, 10).matmul_meta(MatrixMeta(20, 10, 5))

    def test_matmul_density_dense_inputs(self):
        a = MatrixMeta(10, 10, density=1.0)
        assert a.matmul_meta(a).density == 1.0

    def test_matmul_density_sparse_inputs_grows_with_k(self):
        thin = MatrixMeta(100, 10, density=0.1).matmul_meta(
            MatrixMeta(10, 100, density=0.1)
        )
        wide = MatrixMeta(100, 1000, density=0.1).matmul_meta(
            MatrixMeta(1000, 100, density=0.1)
        )
        assert wide.density > thin.density

    def test_elementwise_meta_sparse_safe_takes_min(self):
        a = MatrixMeta(10, 10, density=0.1)
        b = MatrixMeta(10, 10, density=0.9)
        assert a.elementwise_meta(b, sparse_safe=True).density == pytest.approx(0.1)

    def test_elementwise_meta_additive_otherwise(self):
        a = MatrixMeta(10, 10, density=0.4)
        b = MatrixMeta(10, 10, density=0.4)
        assert a.elementwise_meta(b, sparse_safe=False).density == pytest.approx(0.8)

    def test_elementwise_meta_shape_mismatch(self):
        with pytest.raises(MatrixShapeError):
            MatrixMeta(10, 10).elementwise_meta(MatrixMeta(10, 11), True)
