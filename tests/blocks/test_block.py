"""Unit tests for the Block container."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.blocks import Block
from repro.errors import SparsityError


class TestConstruction:
    def test_dense_from_list(self):
        b = Block([[1.0, 2.0], [3.0, 4.0]])
        assert not b.is_sparse
        assert b.shape == (2, 2)
        assert b.data.dtype == np.float64

    def test_scalar_becomes_1x1(self):
        b = Block(np.float64(5.0))
        assert b.shape == (1, 1)

    def test_vector_becomes_column(self):
        b = Block(np.array([1.0, 2.0, 3.0]))
        assert b.shape == (3, 1)

    def test_3d_rejected(self):
        with pytest.raises(ValueError):
            Block(np.zeros((2, 2, 2)))

    def test_sparse_normalized_to_csr(self):
        b = Block(sp.coo_matrix(np.eye(3)))
        assert b.is_sparse
        assert isinstance(b.data, sp.csr_matrix)

    def test_integer_input_coerced_to_float(self):
        b = Block(np.array([[1, 2], [3, 4]]))
        assert b.data.dtype == np.float64


class TestProperties:
    def test_nnz_dense(self):
        b = Block(np.array([[0.0, 1.0], [2.0, 0.0]]))
        assert b.nnz == 2

    def test_nnz_sparse(self):
        b = Block(sp.csr_matrix(np.array([[0.0, 1.0], [2.0, 0.0]])))
        assert b.nnz == 2

    def test_density(self):
        b = Block(np.array([[0.0, 1.0], [2.0, 0.0]]))
        assert b.density == pytest.approx(0.5)

    def test_dense_nbytes(self):
        b = Block(np.zeros((10, 20)))
        assert b.nbytes == 10 * 20 * 8

    def test_sparse_nbytes_scales_with_nnz(self):
        a = Block(sp.random(50, 50, density=0.02, format="csr", random_state=0))
        b = Block(sp.random(50, 50, density=0.2, format="csr", random_state=0))
        assert a.nbytes < b.nbytes

    def test_empty_block_density_zero(self):
        b = Block.zeros(4, 4, sparse=True)
        assert b.density == 0.0


class TestConversions:
    def test_round_trip_sparse_dense(self):
        arr = np.array([[0.0, 1.5], [2.5, 0.0]])
        b = Block(arr)
        assert b.to_sparse().to_dense().allclose(b)

    def test_to_numpy_is_copy(self):
        arr = np.ones((2, 2))
        b = Block(arr)
        out = b.to_numpy()
        out[0, 0] = 99.0
        assert b.data[0, 0] == 1.0

    def test_require_sparse_raises_on_dense(self):
        with pytest.raises(SparsityError):
            Block(np.ones((2, 2))).require_sparse()

    def test_require_sparse_returns_csr(self):
        b = Block(sp.eye(3, format="csr"))
        assert b.require_sparse().shape == (3, 3)


class TestStructural:
    def test_transpose_dense(self):
        arr = np.arange(6.0).reshape(2, 3)
        assert np.array_equal(Block(arr).transpose().to_numpy(), arr.T)

    def test_transpose_sparse_stays_sparse(self):
        b = Block(sp.eye(3, 4, format="csr"))
        t = b.transpose()
        assert t.is_sparse
        assert t.shape == (4, 3)

    def test_slice(self):
        arr = np.arange(16.0).reshape(4, 4)
        piece = Block(arr).slice(slice(1, 3), slice(0, 2))
        assert np.array_equal(piece.to_numpy(), arr[1:3, 0:2])

    def test_copy_is_independent(self):
        b = Block(np.ones((2, 2)))
        c = b.copy()
        c.data[0, 0] = 7.0
        assert b.data[0, 0] == 1.0

    def test_zeros_and_full_and_eye(self):
        assert Block.zeros(2, 3).to_numpy().sum() == 0.0
        assert Block.full(2, 2, 3.0).to_numpy().sum() == 12.0
        assert np.array_equal(Block.eye(2, 3).to_numpy(), np.eye(2, 3))

    def test_allclose_across_formats(self):
        arr = np.array([[0.0, 2.0], [0.0, 0.0]])
        assert Block(arr).allclose(Block(sp.csr_matrix(arr)))

    def test_allclose_shape_mismatch(self):
        assert not Block(np.zeros((2, 2))).allclose(Block(np.zeros((2, 3))))

    def test_repr_mentions_kind(self):
        assert "dense" in repr(Block(np.ones((2, 2))))
        assert "sparse" in repr(Block(sp.eye(2, format="csr")))
