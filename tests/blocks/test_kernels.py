"""Unit tests for named block kernels and flop estimators."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.blocks import (
    Block,
    aggregate,
    binary,
    binary_flops,
    matmul,
    matmul_flops,
    sddmm,
    sddmm_flops,
    unary,
    unary_flops,
)
from repro.blocks.kernels import (
    BINARY_KERNELS,
    UNARY_KERNELS,
    aggregate_combine,
    aggregate_flops,
)
from repro.errors import MatrixShapeError, SparsityError


def dense(seed=0, shape=(4, 5)):
    return Block(np.random.default_rng(seed).uniform(0.5, 2.0, shape))


def sparse(seed=0, shape=(4, 5), density=0.3):
    return Block(sp.random(*shape, density=density, format="csr",
                           random_state=seed, data_rvs=lambda n: np.full(n, 1.5)))


class TestUnary:
    @pytest.mark.parametrize("name", sorted(UNARY_KERNELS))
    def test_matches_numpy_on_dense(self, name):
        b = dense()
        with np.errstate(all="ignore"):
            expected = UNARY_KERNELS[name].fn(b.to_numpy())
        np.testing.assert_allclose(unary(name, b).to_numpy(), expected)

    def test_zero_preserving_keeps_sparse(self):
        b = sparse()
        out = unary("sq", b)
        assert out.is_sparse
        np.testing.assert_allclose(out.to_numpy(), b.to_numpy() ** 2)

    def test_non_preserving_densifies(self):
        out = unary("exp", sparse())
        assert not out.is_sparse

    def test_unknown_kernel(self):
        with pytest.raises(KeyError):
            unary("nope", dense())

    def test_flops_dense(self):
        assert unary_flops("log", dense(shape=(3, 7))) == 21

    def test_flops_sparse_zero_preserving(self):
        b = sparse()
        assert unary_flops("sq", b) == b.nnz

    def test_sigmoid_stable_for_large_inputs(self):
        b = Block(np.array([[1000.0, -1000.0]]))
        out = unary("sigmoid", b).to_numpy()
        assert out[0, 0] == pytest.approx(1.0)
        assert out[0, 1] == pytest.approx(0.0)


class TestBinary:
    @pytest.mark.parametrize("name", sorted(BINARY_KERNELS))
    def test_matches_numpy_dense_dense(self, name):
        a, b = dense(1), dense(2)
        with np.errstate(all="ignore"):
            expected = BINARY_KERNELS[name].fn(a.to_numpy(), b.to_numpy())
        np.testing.assert_allclose(binary(name, a, b).to_numpy(), expected)

    def test_scalar_right(self):
        a = dense()
        np.testing.assert_allclose(
            binary("add", a, 2.0).to_numpy(), a.to_numpy() + 2.0
        )

    def test_scalar_left(self):
        a = dense()
        np.testing.assert_allclose(
            binary("sub", 1.0, a).to_numpy(), 1.0 - a.to_numpy()
        )

    def test_sparse_mul_dense_stays_sparse(self):
        a, b = sparse(), dense()
        out = binary("mul", a, b)
        assert out.is_sparse
        np.testing.assert_allclose(out.to_numpy(), a.to_numpy() * b.to_numpy())

    def test_sparse_div_dense_stays_sparse(self):
        a, b = sparse(), dense()
        out = binary("div", a, b)
        assert out.is_sparse
        np.testing.assert_allclose(out.to_numpy(), a.to_numpy() / b.to_numpy())

    def test_dense_mul_sparse_stays_sparse(self):
        a, b = dense(), sparse()
        out = binary("mul", a, b)
        assert out.is_sparse
        np.testing.assert_allclose(out.to_numpy(), a.to_numpy() * b.to_numpy())

    def test_sparse_add_sparse(self):
        a, b = sparse(1), sparse(2)
        out = binary("add", a, b)
        assert out.is_sparse
        np.testing.assert_allclose(out.to_numpy(), a.to_numpy() + b.to_numpy())

    def test_neq_zero_mask_on_sparse(self):
        a = sparse()
        out = binary("neq", a, 0.0)
        assert out.is_sparse
        np.testing.assert_allclose(
            out.to_numpy(), (a.to_numpy() != 0).astype(float)
        )

    def test_sparse_scalar_mul_preserves_format(self):
        out = binary("mul", sparse(), 3.0)
        assert out.is_sparse

    def test_shape_mismatch(self):
        with pytest.raises(MatrixShapeError):
            binary("add", dense(shape=(2, 2)), dense(shape=(2, 3)))

    def test_both_scalars_rejected(self):
        with pytest.raises(TypeError):
            binary("add", 1.0, 2.0)

    def test_flops_sparse_left(self):
        a = sparse()
        assert binary_flops("mul", a, dense()) == a.nnz

    def test_flops_dense(self):
        assert binary_flops("add", dense(shape=(3, 3)), dense(shape=(3, 3))) == 9

    def test_pow_sparse_left_dense_right(self):
        a, b = sparse(), Block(np.full((4, 5), 2.0))
        out = binary("pow", a, b)
        assert out.is_sparse
        np.testing.assert_allclose(out.to_numpy(), a.to_numpy() ** 2)


class TestAggregation:
    def test_sum(self):
        b = dense()
        assert aggregate("sum", b).to_numpy()[0, 0] == pytest.approx(
            b.to_numpy().sum()
        )

    def test_rowsum_shape_and_values(self):
        b = dense(shape=(4, 6))
        out = aggregate("rowSum", b)
        assert out.shape == (4, 1)
        np.testing.assert_allclose(
            out.to_numpy(), b.to_numpy().sum(axis=1, keepdims=True)
        )

    def test_colsum(self):
        b = dense(shape=(4, 6))
        np.testing.assert_allclose(
            aggregate("colSum", b).to_numpy(),
            b.to_numpy().sum(axis=0, keepdims=True),
        )

    def test_min_max(self):
        b = dense()
        assert aggregate("min", b).to_numpy()[0, 0] == b.to_numpy().min()
        assert aggregate("max", b).to_numpy()[0, 0] == b.to_numpy().max()

    def test_combine_sum_partials(self):
        a, b = dense(1), dense(2)
        merged = aggregate_combine(
            "sum", aggregate("sum", a), aggregate("sum", b)
        )
        assert merged.to_numpy()[0, 0] == pytest.approx(
            a.to_numpy().sum() + b.to_numpy().sum()
        )

    def test_combine_max_partials(self):
        a, b = dense(1), dense(2)
        merged = aggregate_combine(
            "max", aggregate("max", a), aggregate("max", b)
        )
        assert merged.to_numpy()[0, 0] == max(
            a.to_numpy().max(), b.to_numpy().max()
        )

    def test_flops_sparse(self):
        b = sparse()
        assert aggregate_flops("sum", b) == b.nnz

    def test_unknown(self):
        with pytest.raises(KeyError):
            aggregate("median", dense())


class TestMatMul:
    def test_dense_dense(self):
        a, b = dense(1, (3, 4)), dense(2, (4, 5))
        np.testing.assert_allclose(
            matmul(a, b).to_numpy(), a.to_numpy() @ b.to_numpy()
        )

    def test_sparse_dense(self):
        a, b = sparse(1, (3, 4), 0.5), dense(2, (4, 5))
        np.testing.assert_allclose(
            matmul(a, b).to_numpy(), a.to_numpy() @ b.to_numpy()
        )

    def test_sparse_sparse_stays_sparse(self):
        a, b = sparse(1, (4, 4), 0.3), sparse(2, (4, 4), 0.3)
        out = matmul(a, b)
        assert out.is_sparse
        np.testing.assert_allclose(out.to_numpy(), a.to_numpy() @ b.to_numpy())

    def test_shape_mismatch(self):
        with pytest.raises(MatrixShapeError):
            matmul(dense(shape=(2, 3)), dense(shape=(2, 3)))

    def test_flops_dense(self):
        assert matmul_flops(dense(shape=(2, 3)), dense(shape=(3, 4))) == 2 * 2 * 3 * 4

    def test_flops_sparse_left(self):
        a = sparse(shape=(4, 4), density=0.25)
        assert matmul_flops(a, dense(shape=(4, 5))) == 2 * a.nnz * 5


class TestSDDMM:
    def test_matches_masked_product(self):
        mask = sparse(3, (4, 6), 0.3)
        a, b = dense(1, (4, 5)), dense(2, (5, 6))
        out = sddmm(mask, a, b)
        assert out.is_sparse
        expected = (a.to_numpy() @ b.to_numpy()) * (mask.to_numpy() != 0)
        np.testing.assert_allclose(out.to_numpy(), expected)

    def test_empty_mask(self):
        mask = Block.zeros(4, 6, sparse=True)
        out = sddmm(mask, dense(1, (4, 5)), dense(2, (5, 6)))
        assert out.nnz == 0

    def test_dense_mask_rejected(self):
        with pytest.raises(SparsityError):
            sddmm(dense(shape=(4, 6)), dense(1, (4, 5)), dense(2, (5, 6)))

    def test_mask_shape_mismatch(self):
        with pytest.raises(MatrixShapeError):
            sddmm(sparse(shape=(3, 3)), dense(1, (4, 5)), dense(2, (5, 6)))

    def test_flops_proportional_to_nnz(self):
        mask = sparse(3, (4, 6), 0.3)
        assert sddmm_flops(mask, dense(1, (4, 5)), dense(2, (5, 6))) == 2 * mask.nnz * 5
