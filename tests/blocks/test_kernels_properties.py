"""Property-based tests (hypothesis) on block kernels.

Invariants checked: representation independence (sparse and dense blocks
yield identical numbers), algebraic identities, and SDDMM's defining
property against full multiplication.
"""

import numpy as np
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st
from hypothesis.extra.numpy import arrays

from repro.blocks import Block, binary, matmul, sddmm, unary

finite = st.floats(min_value=-100, max_value=100, allow_nan=False, width=64)
positive = st.floats(min_value=0.1, max_value=100, allow_nan=False, width=64)


def small_matrix(rows=st.integers(1, 6), cols=st.integers(1, 6), elements=finite):
    return st.tuples(rows, cols).flatmap(
        lambda rc: arrays(np.float64, (rc[0], rc[1]), elements=elements)
    )


def sparsify(arr: np.ndarray) -> np.ndarray:
    """Zero out roughly half the entries deterministically."""
    mask = (np.arange(arr.size).reshape(arr.shape) % 2).astype(bool)
    return arr * mask


@settings(max_examples=60, deadline=None)
@given(small_matrix())
def test_unary_sparse_dense_agree(arr):
    arr = sparsify(arr)
    dense_out = unary("sq", Block(arr)).to_numpy()
    sparse_out = unary("sq", Block(sp.csr_matrix(arr))).to_numpy()
    np.testing.assert_allclose(dense_out, sparse_out)


@settings(max_examples=60, deadline=None)
@given(small_matrix(elements=positive))
def test_binary_mul_sparse_dense_agree(arr):
    masked = sparsify(arr)
    a_dense = binary("mul", Block(masked), Block(arr)).to_numpy()
    a_sparse = binary("mul", Block(sp.csr_matrix(masked)), Block(arr)).to_numpy()
    np.testing.assert_allclose(a_dense, a_sparse)


@settings(max_examples=60, deadline=None)
@given(small_matrix())
def test_add_commutative(arr):
    a, b = Block(arr), Block(arr[::-1].copy())
    np.testing.assert_allclose(
        binary("add", a, b).to_numpy(), binary("add", b, a).to_numpy()
    )


@settings(max_examples=60, deadline=None)
@given(small_matrix())
def test_double_transpose_identity(arr):
    b = Block(arr)
    np.testing.assert_allclose(b.transpose().transpose().to_numpy(), arr)


@settings(max_examples=60, deadline=None)
@given(small_matrix())
def test_neg_involution(arr):
    b = Block(arr)
    np.testing.assert_allclose(unary("neg", unary("neg", b)).to_numpy(), arr)


@settings(max_examples=40, deadline=None)
@given(
    st.integers(1, 5), st.integers(1, 5), st.integers(1, 5),
    st.randoms(use_true_random=False),
)
def test_sddmm_equals_masked_matmul(m, k, n, rnd):
    rng = np.random.default_rng(rnd.randint(0, 2**31))
    a = rng.normal(size=(m, k))
    b = rng.normal(size=(k, n))
    mask = (rng.random((m, n)) < 0.5).astype(float)
    mask_block = Block(sp.csr_matrix(mask))
    expected = (a @ b) * mask
    got = sddmm(mask_block, Block(a), Block(b)).to_numpy()
    np.testing.assert_allclose(got, expected, atol=1e-10)


@settings(max_examples=40, deadline=None)
@given(
    st.integers(1, 4), st.integers(1, 4), st.integers(1, 4),
    st.randoms(use_true_random=False),
)
def test_matmul_matches_numpy(m, k, n, rnd):
    rng = np.random.default_rng(rnd.randint(0, 2**31))
    a = rng.normal(size=(m, k))
    b = rng.normal(size=(k, n))
    np.testing.assert_allclose(
        matmul(Block(a), Block(b)).to_numpy(), a @ b, atol=1e-10
    )


@settings(max_examples=60, deadline=None)
@given(small_matrix(elements=positive), st.floats(0.1, 10))
def test_scalar_div_then_mul_roundtrip(arr, scalar):
    b = Block(arr)
    round_trip = binary("mul", binary("div", b, scalar), scalar).to_numpy()
    np.testing.assert_allclose(round_trip, arr, rtol=1e-9)
