"""Tests for the numpy reference interpreter."""

import numpy as np
import pytest

from repro.errors import PlanError
from repro.lang import (
    colsum,
    evaluate,
    evaluate_many,
    log,
    matrix_input,
    nnz_mask,
    rowsum,
    sq,
    sum_of,
)


@pytest.fixture
def env(rng):
    return {
        "X": rng.uniform(size=(40, 30)) * (rng.uniform(size=(40, 30)) < 0.3),
        "U": rng.uniform(size=(40, 10)),
        "V": rng.uniform(size=(30, 10)),
    }


@pytest.fixture
def exprs():
    x = matrix_input("X", 40, 30, 25, density=0.3)
    u = matrix_input("U", 40, 10, 25)
    v = matrix_input("V", 30, 10, 25)
    return x, u, v


class TestEvaluate:
    def test_elementwise_chain(self, env, exprs):
        x, u, v = exprs
        got = evaluate((x * 2.0 + 1.0).node, env)
        np.testing.assert_allclose(got, env["X"] * 2.0 + 1.0)

    def test_matmul_with_transpose(self, env, exprs):
        x, u, v = exprs
        got = evaluate((u @ v.T).node, env)
        np.testing.assert_allclose(got, env["U"] @ env["V"].T)

    def test_full_nmf_query(self, env, exprs):
        x, u, v = exprs
        got = evaluate((x * log(u @ v.T + 1e-8)).node, env)
        expected = env["X"] * np.log(env["U"] @ env["V"].T + 1e-8)
        np.testing.assert_allclose(got, expected)

    def test_als_loss(self, env, exprs):
        x, u, v = exprs
        got = evaluate(sum_of(nnz_mask(x) * sq(x - u @ v.T)).node, env)
        expected = np.sum(
            (env["X"] != 0) * (env["X"] - env["U"] @ env["V"].T) ** 2
        )
        np.testing.assert_allclose(got, expected)

    def test_aggregations(self, env, exprs):
        x, _, _ = exprs
        np.testing.assert_allclose(
            evaluate(rowsum(x).node, env), env["X"].sum(axis=1, keepdims=True)
        )
        np.testing.assert_allclose(
            evaluate(colsum(x).node, env), env["X"].sum(axis=0, keepdims=True)
        )

    def test_scalar_on_left(self, env, exprs):
        x, _, _ = exprs
        got = evaluate((1.0 - x).node, env)
        np.testing.assert_allclose(got, 1.0 - env["X"])

    def test_binding_by_node_id(self, env, exprs):
        x, u, v = exprs
        mm = (u @ v.T).node
        fake = np.ones((40, 30))
        got = evaluate((x * mm_expr(mm)).node, {**env, mm.node_id: fake})
        np.testing.assert_allclose(got, env["X"])

    def test_missing_binding_raises(self, exprs):
        x, _, _ = exprs
        with pytest.raises(PlanError):
            evaluate((x * 2.0).node, {})

    def test_evaluate_many_shares_common_work(self, env, exprs):
        x, u, v = exprs
        product = u @ v.T
        a, b = evaluate_many([(x * product).node, sum_of(product).node], env)
        expected_product = env["U"] @ env["V"].T
        np.testing.assert_allclose(a, env["X"] * expected_product)
        np.testing.assert_allclose(b, expected_product.sum())


def mm_expr(node):
    from repro.lang.builder import Expr

    return Expr(node)
