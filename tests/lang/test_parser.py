"""Tests for the DML-style expression parser."""

import numpy as np
import pytest

from repro.errors import PlanError
from repro.lang import DAG, evaluate, matrix_input
from repro.lang.parser import parse_expression


@pytest.fixture
def bindings():
    return {
        "X": matrix_input("X", 40, 30, 25, density=0.2),
        "U": matrix_input("U", 10, 30, 25),
        "V": matrix_input("V", 40, 10, 25),
    }


@pytest.fixture
def arrays(rng):
    return {
        "X": rng.uniform(size=(40, 30)),
        "U": rng.uniform(size=(10, 30)),
        "V": rng.uniform(size=(40, 10)),
    }


def roundtrip(text, bindings, arrays):
    expr = parse_expression(text, bindings)
    return evaluate(DAG(expr.node).roots[0], arrays)


class TestParsing:
    def test_gnmf_update(self, bindings, arrays):
        got = roundtrip(
            "U * (t(V) %*% X) / (t(V) %*% V %*% U)", bindings, arrays
        )
        x, u, v = arrays["X"], arrays["U"], arrays["V"]
        expected = u * (v.T @ x) / (v.T @ v @ u)
        np.testing.assert_allclose(got, expected)

    def test_nmf_query(self, bindings, arrays):
        got = roundtrip("X * log(V %*% U + 0.0001)", bindings, arrays)
        expected = arrays["X"] * np.log(arrays["V"] @ arrays["U"] + 1e-4)
        np.testing.assert_allclose(got, expected)

    def test_sum_aggregation(self, bindings, arrays):
        got = roundtrip("sum(X * X)", bindings, arrays)
        np.testing.assert_allclose(got, (arrays["X"] ** 2).sum())

    def test_row_col_sums(self, bindings, arrays):
        got = roundtrip("rowSums(X)", bindings, arrays)
        np.testing.assert_allclose(got, arrays["X"].sum(axis=1, keepdims=True))
        got = roundtrip("colSums(X)", bindings, arrays)
        np.testing.assert_allclose(got, arrays["X"].sum(axis=0, keepdims=True))

    def test_power(self, bindings, arrays):
        got = roundtrip("(X - X * 0.5) ^ 2", bindings, arrays)
        np.testing.assert_allclose(got, (arrays["X"] * 0.5) ** 2)

    def test_scalar_arithmetic_folds(self, bindings, arrays):
        got = roundtrip("X * (2 + 3)", bindings, arrays)
        np.testing.assert_allclose(got, arrays["X"] * 5.0)

    def test_unary_minus(self, bindings, arrays):
        got = roundtrip("-X + 1", bindings, arrays)
        np.testing.assert_allclose(got, 1.0 - arrays["X"])

    def test_precedence_matmul_binds_tighter_than_mul(self, bindings, arrays):
        got = roundtrip("X * t(t(X)) + V %*% U", bindings, arrays)
        expected = arrays["X"] * arrays["X"] + arrays["V"] @ arrays["U"]
        np.testing.assert_allclose(got, expected)

    def test_scientific_notation(self, bindings, arrays):
        got = roundtrip("X + 1e-3", bindings, arrays)
        np.testing.assert_allclose(got, arrays["X"] + 1e-3)


class TestErrors:
    def test_unbound_name(self, bindings):
        with pytest.raises(PlanError, match="unbound"):
            parse_expression("X * Z", bindings)

    def test_unknown_function(self, bindings):
        with pytest.raises(PlanError, match="unknown function"):
            parse_expression("frobnicate(X)", bindings)

    def test_trailing_tokens(self, bindings):
        with pytest.raises(PlanError, match="trailing"):
            parse_expression("X X", bindings)

    def test_unbalanced_parens(self, bindings):
        with pytest.raises(PlanError):
            parse_expression("(X * X", bindings)

    def test_bare_scalar_rejected(self, bindings):
        with pytest.raises(PlanError, match="scalar"):
            parse_expression("1 + 2", bindings)

    def test_matmul_needs_matrices(self, bindings):
        with pytest.raises(PlanError):
            parse_expression("2 %*% X", bindings)

    def test_garbage_rejected(self, bindings):
        with pytest.raises(PlanError):
            parse_expression("X @ X", bindings)


class TestEndToEnd:
    def test_parsed_query_runs_on_engine(self, bindings, arrays):
        from repro import FuseMEEngine
        from repro.matrix import from_numpy
        from tests.conftest import make_config

        expr = parse_expression(
            "U * (t(V) %*% X) / (t(V) %*% V %*% U + 1e-9)", bindings
        )
        inputs = {k: from_numpy(v, block_size=25) for k, v in arrays.items()}
        result = FuseMEEngine(make_config()).execute(expr, inputs)
        x, u, v = arrays["X"], arrays["U"], arrays["V"]
        expected = u * (v.T @ x) / (v.T @ v @ u + 1e-9)
        np.testing.assert_allclose(
            result.output().to_numpy(), expected, atol=1e-8
        )
