"""Tests for the plan rewriter."""

import numpy as np

from repro.lang import DAG, evaluate, matrix_input, simplify_dag
from repro.lang.dag import BinaryNode, TransposeNode


def count(dag: DAG, node_type) -> int:
    return sum(isinstance(n, node_type) for n in dag.nodes())


class TestDoubleTranspose:
    def test_eliminated(self):
        x = matrix_input("X", 40, 30, 25)
        dag = simplify_dag(DAG(x.T.T.node))
        assert count(dag, TransposeNode) == 0

    def test_triple_transpose_leaves_one(self):
        x = matrix_input("X", 40, 30, 25)
        dag = simplify_dag(DAG(x.T.T.T.node))
        assert count(dag, TransposeNode) == 1

    def test_single_transpose_untouched(self):
        x = matrix_input("X", 40, 30, 25)
        dag = simplify_dag(DAG(x.T.node))
        assert count(dag, TransposeNode) == 1


class TestScalarFolding:
    def test_add_chain_folds(self):
        x = matrix_input("X", 10, 10, 25)
        dag = simplify_dag(DAG((x + 1.0 + 2.0).node))
        binaries = [n for n in dag.nodes() if isinstance(n, BinaryNode)]
        assert len(binaries) == 1
        assert binaries[0].scalar == 3.0

    def test_mul_chain_folds(self):
        x = matrix_input("X", 10, 10, 25)
        dag = simplify_dag(DAG((x * 2.0 * 4.0).node))
        binaries = [n for n in dag.nodes() if isinstance(n, BinaryNode)]
        assert len(binaries) == 1
        assert binaries[0].scalar == 8.0

    def test_mixed_kernels_not_folded(self):
        x = matrix_input("X", 10, 10, 25)
        dag = simplify_dag(DAG((x + 1.0 * 1.0).node))  # add only
        dag2 = simplify_dag(DAG(((x + 1.0) * 2.0).node))
        assert count(dag2, BinaryNode) == 2

    def test_sub_not_folded(self):
        x = matrix_input("X", 10, 10, 25)
        dag = simplify_dag(DAG((x - 1.0 - 2.0).node))
        assert count(dag, BinaryNode) == 2


class TestSemanticsPreserved:
    def test_rewrites_preserve_value(self, rng):
        x = matrix_input("X", 20, 30, 25)
        u = matrix_input("U", 30, 10, 25)
        expr = ((x.T.T @ u) * 2.0 * 3.0 + 1.0 + 1.0).T.T
        dag = DAG(expr.node)
        simplified = simplify_dag(dag)
        env = {"X": rng.normal(size=(20, 30)), "U": rng.normal(size=(30, 10))}
        np.testing.assert_allclose(
            evaluate(dag.roots[0], env), evaluate(simplified.roots[0], env)
        )
        assert len(simplified) < len(dag)

    def test_shared_subtrees_stay_shared(self):
        x = matrix_input("X", 10, 10, 25)
        shared = (x * 2.0).node
        from repro.lang.dag import BinaryNode as B

        root = B("add", shared, shared)
        simplified = simplify_dag(DAG(root))
        new_root = simplified.roots[0]
        assert new_root.inputs[0] is new_root.inputs[1]
