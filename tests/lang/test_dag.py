"""Unit tests for DAG nodes and the query-plan container."""

import pytest

from repro.errors import PlanError
from repro.lang import (
    DAG,
    AggNode,
    BinaryNode,
    InputNode,
    MatMulNode,
    TransposeNode,
    UnaryNode,
    matrix_input,
    sum_of,
)
from repro.matrix import MatrixMeta


def leaf(name="X", rows=100, cols=100, density=1.0):
    return InputNode(name, MatrixMeta(rows, cols, 25, density))


class TestNodeMetaInference:
    def test_unary_preserves_shape(self):
        node = UnaryNode("sq", leaf())
        assert node.meta.shape == (100, 100)

    def test_unary_zero_preserving_keeps_density(self):
        node = UnaryNode("sq", leaf(density=0.1))
        assert node.meta.density == pytest.approx(0.1)

    def test_unary_densifying_sets_density_one(self):
        node = UnaryNode("log", leaf(density=0.1))
        assert node.meta.density == 1.0

    def test_binary_sparse_safe_takes_min_density(self):
        node = BinaryNode("mul", leaf(density=0.05), leaf(density=0.9))
        assert node.meta.density == pytest.approx(0.05)

    def test_binary_scalar_mul_keeps_density(self):
        node = BinaryNode("mul", leaf(density=0.1), None, scalar=3.0)
        assert node.meta.density == pytest.approx(0.1)

    def test_binary_scalar_add_densifies(self):
        node = BinaryNode("add", leaf(density=0.1), None, scalar=1.0)
        assert node.meta.density == 1.0

    def test_binary_neq_zero_keeps_pattern(self):
        node = BinaryNode("neq", leaf(density=0.1), None, scalar=0.0)
        assert node.meta.density == pytest.approx(0.1)

    def test_matmul_shape(self):
        node = MatMulNode(leaf(rows=100, cols=50), leaf(rows=50, cols=75))
        assert node.meta.shape == (100, 75)
        assert node.common_dim == 50

    def test_matmul_mm_dims_in_blocks(self):
        node = MatMulNode(leaf(rows=100, cols=50), leaf(rows=50, cols=75))
        assert node.mm_dims() == (4, 3, 2)

    def test_transpose(self):
        node = TransposeNode(leaf(rows=100, cols=50))
        assert node.meta.shape == (50, 100)

    def test_agg_shapes(self):
        assert AggNode("sum", leaf()).meta.shape == (1, 1)
        assert AggNode("rowSum", leaf(rows=80)).meta.shape == (80, 1)
        assert AggNode("colSum", leaf(cols=60)).meta.shape == (1, 60)

    def test_unknown_kernels_rejected(self):
        with pytest.raises(KeyError):
            UnaryNode("nope", leaf())
        with pytest.raises(KeyError):
            BinaryNode("nope", leaf(), leaf())
        with pytest.raises(KeyError):
            AggNode("nope", leaf())

    def test_estimated_flops_matmul_dense(self):
        node = MatMulNode(leaf(rows=100, cols=50), leaf(rows=50, cols=75))
        assert node.estimated_flops() == 2 * 100 * 50 * 75

    def test_estimated_flops_matmul_sparse_left(self):
        node = MatMulNode(
            leaf(rows=100, cols=50, density=0.01), leaf(rows=50, cols=75)
        )
        assert node.estimated_flops() == 2 * 50 * 75  # 2 * nnz * J


class TestDAG:
    def build(self):
        x = matrix_input("X", 100, 100, 25, density=0.1)
        u = matrix_input("U", 100, 50, 25)
        v = matrix_input("V", 100, 50, 25)
        expr = x * (u @ v.T)
        return DAG(expr.node), x, u, v

    def test_topological_order(self):
        dag, *_ = self.build()
        nodes = dag.nodes()
        position = {n: i for i, n in enumerate(nodes)}
        for node in nodes:
            for child in node.inputs:
                assert position[child] < position[node]

    def test_inputs(self):
        dag, *_ = self.build()
        assert sorted(n.name for n in dag.inputs()) == ["U", "V", "X"]

    def test_consumers(self):
        x = matrix_input("X", 10, 10, 25)
        shared = x * 2.0
        root = shared.node
        dag = DAG(BinaryNode("add", root, root))
        assert dag.consumers(root) == 2

    def test_consumers_unknown_node(self):
        dag, *_ = self.build()
        stranger = leaf("Z")
        with pytest.raises(PlanError):
            dag.consumers(stranger)

    def test_parents(self):
        dag, x, u, v = self.build()
        mm = dag.matmul_nodes()[0]
        parents = dag.parents(mm)
        assert len(parents) == 1
        assert isinstance(parents[0], BinaryNode)

    def test_multi_root(self):
        x = matrix_input("X", 10, 10, 25)
        dag = DAG([(x * 2.0).node, sum_of(x).node])
        assert len(dag.roots) == 2

    def test_empty_roots_rejected(self):
        with pytest.raises(PlanError):
            DAG([])

    def test_validate_inputs_reports_missing(self):
        dag, *_ = self.build()
        with pytest.raises(PlanError, match="missing input bindings"):
            dag.validate_inputs(["X", "U"])

    def test_dump_contains_labels(self):
        dag, *_ = self.build()
        dump = dag.dump()
        assert "ba(x)" in dump and "b(mul)" in dump
