"""Tests for measured-density refinement of leaf metadata."""

import numpy as np
import pytest

from repro import FuseMEEngine
from repro.lang import DAG, log, matrix_input
from repro.lang.rewrites import refresh_leaf_metas
from repro.matrix import MatrixMeta, rand_dense, rand_sparse

from tests.conftest import make_config

BS = 25


class TestRefreshLeafMetas:
    def test_leaf_density_replaced(self):
        x = matrix_input("X", 100, 100, BS, density=1.0)
        dag = DAG((x * 2.0).node)
        refreshed = refresh_leaf_metas(
            dag, {"X": MatrixMeta(100, 100, BS, density=0.01)}
        )
        leaf = refreshed.inputs()[0]
        assert leaf.meta.density == pytest.approx(0.01)

    def test_derived_metas_recomputed(self):
        x = matrix_input("X", 100, 100, BS, density=1.0)
        dag = DAG((x * x).node)
        refreshed = refresh_leaf_metas(
            dag, {"X": MatrixMeta(100, 100, BS, density=0.01)}
        )
        assert refreshed.roots[0].meta.density == pytest.approx(0.01)

    def test_unknown_names_keep_declaration(self):
        x = matrix_input("X", 100, 100, BS, density=0.7)
        dag = DAG((x * 2.0).node)
        refreshed = refresh_leaf_metas(dag, {})
        assert refreshed.inputs()[0].meta.density == pytest.approx(0.7)

    def test_shared_subtrees_stay_shared(self):
        x = matrix_input("X", 100, 100, BS)
        shared = (x * 2.0).node
        from repro.lang.dag import BinaryNode

        dag = DAG(BinaryNode("add", shared, shared))
        refreshed = refresh_leaf_metas(
            dag, {"X": MatrixMeta(100, 100, BS, density=0.5)}
        )
        root = refreshed.roots[0]
        assert root.inputs[0] is root.inputs[1]


class TestEngineOption:
    def test_refinement_unlocks_sparsity_exploitation(self):
        """A wrong 'dense' declaration blocks the mask; measured density
        restores it — with identical results either way."""
        x_matrix = rand_sparse(200, 150, 0.02, BS, seed=1)
        u_matrix = rand_dense(200, 50, BS, seed=2)
        v_matrix = rand_dense(150, 50, BS, seed=3)
        x = matrix_input("X", 200, 150, BS, density=1.0)  # wrong
        u = matrix_input("U", 200, 50, BS)
        v = matrix_input("V", 150, 50, BS)
        query = x * log(u @ v.T + 1e-8)
        inputs = {"X": x_matrix, "U": u_matrix, "V": v_matrix}
        expected = x_matrix.to_numpy() * np.log(
            u_matrix.to_numpy() @ v_matrix.to_numpy().T + 1e-8
        )

        plain = FuseMEEngine(make_config()).execute(query, inputs)
        refined = FuseMEEngine(
            make_config(refine_input_metas=True)
        ).execute(query, inputs)
        np.testing.assert_allclose(plain.output().to_numpy(), expected, atol=1e-8)
        np.testing.assert_allclose(refined.output().to_numpy(), expected, atol=1e-8)
        # the refined run exploits the true sparsity: far fewer flops
        assert refined.metrics.flops < plain.metrics.flops / 5
