"""Unit tests for the expression-building API."""

import pytest

from repro.lang import (
    colsum,
    exp,
    log,
    matrix_input,
    max_of,
    min_of,
    nnz_mask,
    rowsum,
    sigmoid,
    sq,
    sqrt,
    sum_of,
)
from repro.lang.dag import AggNode, BinaryNode, MatMulNode, TransposeNode, UnaryNode
from repro.lang.ops import OpType


@pytest.fixture
def x():
    return matrix_input("X", 100, 50, 25, density=0.2)


@pytest.fixture
def y():
    return matrix_input("Y", 100, 50, 25)


class TestOperators:
    def test_add(self, x, y):
        node = (x + y).node
        assert isinstance(node, BinaryNode) and node.kernel == "add"

    def test_radd_scalar(self, x):
        node = (3.0 + x).node
        assert node.kernel == "add" and node.scalar == 3.0
        assert node.scalar_on_left

    def test_sub_scalar(self, x):
        node = (x - 1.5).node
        assert node.kernel == "sub" and node.scalar == 1.5
        assert not node.scalar_on_left

    def test_rsub(self, x):
        node = (1.0 - x).node
        assert node.scalar_on_left

    def test_mul_div(self, x, y):
        assert (x * y).node.kernel == "mul"
        assert (x / y).node.kernel == "div"

    def test_rtruediv(self, x):
        node = (1.0 / x).node
        assert node.kernel == "div" and node.scalar_on_left

    def test_pow_two_becomes_square(self, x):
        node = (x ** 2).node
        assert isinstance(node, UnaryNode) and node.kernel == "sq"

    def test_pow_other(self, x):
        node = (x ** 3).node
        assert isinstance(node, BinaryNode) and node.kernel == "pow"

    def test_neg(self, x):
        assert (-x).node.kernel == "neg"

    def test_comparison_masks(self, x):
        assert (x != 0.0).node.kernel == "neq"
        assert (x > 0.5).node.kernel == "gt"
        assert (x < 0.5).node.kernel == "lt"

    def test_min_max_elementwise(self, x, y):
        assert x.minimum(y).node.kernel == "min"
        assert x.maximum(0.0).node.kernel == "max"

    def test_matmul(self, x):
        w = matrix_input("W", 50, 30, 25)
        node = (x @ w).node
        assert isinstance(node, MatMulNode)
        assert node.meta.shape == (100, 30)

    def test_matmul_rejects_scalar(self, x):
        with pytest.raises(TypeError):
            x @ 2.0

    def test_transpose(self, x):
        node = x.T.node
        assert isinstance(node, TransposeNode)
        assert x.T.shape == (50, 100)


class TestHelpers:
    @pytest.mark.parametrize(
        "fn,kernel",
        [(log, "log"), (exp, "exp"), (sigmoid, "sigmoid"), (sq, "sq"),
         (sqrt, "sqrt")],
    )
    def test_unary_helpers(self, x, fn, kernel):
        node = fn(x).node
        assert isinstance(node, UnaryNode) and node.kernel == kernel

    def test_nnz_mask(self, x):
        node = nnz_mask(x).node
        assert node.kernel == "neq" and node.scalar == 0.0
        assert node.meta.density == pytest.approx(0.2)

    @pytest.mark.parametrize(
        "fn,kernel",
        [(sum_of, "sum"), (rowsum, "rowSum"), (colsum, "colSum"),
         (min_of, "min"), (max_of, "max")],
    )
    def test_agg_helpers(self, x, fn, kernel):
        node = fn(x).node
        assert isinstance(node, AggNode) and node.kernel == kernel

    def test_matrix_input_with_meta(self):
        from repro.matrix import MatrixMeta

        meta = MatrixMeta(10, 20, 5, 0.5)
        e = matrix_input("Z", 0, 0, meta=meta)
        assert e.meta is meta
        assert e.node.op_type is OpType.INPUT

    def test_expr_repr(self, x):
        assert "X" in repr(x)
