"""Tests for synthetic and real-shaped dataset builders."""

import pytest

from repro.datasets import (
    REAL_DATASETS,
    SyntheticCase,
    common_dimension_cases,
    density_cases,
    density_skewed_matrix,
    load_real_dataset,
    nmf_inputs,
    two_large_dimension_cases,
)
from repro.errors import DataError

BS = 25


class TestSyntheticCases:
    def test_two_large_dimensions_series(self):
        cases = two_large_dimension_cases(scale=2500)
        assert [c.paper_rows for c in cases] == [100_000, 250_000, 500_000, 750_000]
        assert all(c.density == 0.001 for c in cases)
        assert all(c.paper_common == 2_000 for c in cases)

    def test_common_dimension_series(self):
        cases = common_dimension_cases(scale=2500)
        assert [c.paper_common for c in cases] == [2_000, 5_000, 10_000, 50_000]
        assert all(c.density == 0.2 for c in cases)

    def test_density_series(self):
        cases = density_cases()
        assert [c.density for c in cases] == [0.05, 0.1, 0.5, 1.0]

    def test_scaling(self):
        case = SyntheticCase("t", 100_000, 2_000, 100_000, 0.1, scale=1000)
        assert case.rows == 100
        assert case.common == 2
        assert case.cols == 100

    def test_nmf_inputs_shapes_snap_to_blocks(self):
        case = SyntheticCase("t", 100_000, 2_000, 150_000, 0.05, scale=1000)
        inputs = nmf_inputs(case, block_size=BS, seed=0)
        x, u, v = inputs["X"], inputs["U"], inputs["V"]
        assert x.shape[0] % BS == 0 and x.shape[1] % BS == 0
        assert u.shape == (x.shape[0], BS)  # common dim snapped up to 1 block
        assert v.shape == (x.shape[1], BS)

    def test_nmf_inputs_density(self):
        case = SyntheticCase("t", 200_000, 50_000, 150_000, 0.1, scale=1000)
        inputs = nmf_inputs(case, block_size=BS, seed=0)
        assert inputs["X"].density == pytest.approx(0.1, rel=0.2)

    def test_nmf_inputs_reproducible(self):
        case = SyntheticCase("t", 100_000, 2_000, 100_000, 0.05, scale=1000)
        a = nmf_inputs(case, BS, seed=5)
        b = nmf_inputs(case, BS, seed=5)
        assert a["X"].allclose(b["X"])


class TestSkewGenerator:
    def test_top_rows_denser(self):
        m = density_skewed_matrix(
            200, 100, dense_fraction=0.25, dense_density=0.5,
            sparse_density=0.01, block_size=BS, seed=0,
        )
        arr = m.to_numpy()
        top_density = (arr[:50] != 0).mean()
        bottom_density = (arr[50:] != 0).mean()
        assert top_density > 10 * bottom_density

    def test_bad_fraction(self):
        with pytest.raises(DataError):
            density_skewed_matrix(100, 100, 1.5, 0.5, 0.01)


class TestRealDatasets:
    def test_table2_statistics(self):
        movielens = REAL_DATASETS["MovieLens"]
        assert movielens.users == 283_228
        assert movielens.items == 58_098
        assert movielens.nonzeros == 27_753_444
        assert REAL_DATASETS["YahooMusic"].nonzeros == 717_872_016

    def test_density_ordering(self):
        """Netflix is the densest of the three rating matrices."""
        d = {name: spec.density for name, spec in REAL_DATASETS.items()}
        assert d["Netflix"] > d["MovieLens"]
        assert d["Netflix"] > d["YahooMusic"]

    def test_load_scaled(self):
        m = load_real_dataset("MovieLens", scale=2000, block_size=BS, seed=0)
        spec = REAL_DATASETS["MovieLens"]
        assert m.shape[0] % BS == 0
        assert m.shape[0] >= spec.users // 2000
        assert m.density == pytest.approx(spec.density, rel=0.5)

    def test_aspect_ratio_preserved_roughly(self):
        m = load_real_dataset("Netflix", scale=500, block_size=BS)
        users, items = m.shape
        paper_ratio = REAL_DATASETS["Netflix"].users / REAL_DATASETS["Netflix"].items
        assert users / items == pytest.approx(paper_ratio, rel=0.6)

    def test_unknown_dataset(self):
        with pytest.raises(DataError):
            load_real_dataset("Spotify")

    def test_ratings_in_range(self):
        m = load_real_dataset("MovieLens", scale=4000, block_size=BS)
        values = m.to_numpy()
        nonzero = values[values != 0]
        assert nonzero.min() >= 1.0 and nonzero.max() < 5.0
