"""Tests for the shared engine skeleton (repro.execution)."""

import numpy as np
import pytest

from repro import FuseMEEngine
from repro.cluster import MetricsCollector, SimulatedCluster
from repro.execution import ExecutionResult, as_dag
from repro.lang import DAG, matrix_input
from repro.matrix import rand_dense

from tests.conftest import make_config

BS = 25


@pytest.fixture
def simple():
    x = matrix_input("X", 100, 100, BS)
    inputs = {"X": rand_dense(100, 100, BS, seed=1)}
    return x, inputs


class TestAsDag:
    def test_expr(self, simple):
        x, _ = simple
        dag = as_dag(x * 2.0)
        assert len(dag.roots) == 1

    def test_expr_list(self, simple):
        x, _ = simple
        dag = as_dag([x * 2.0, x + 1.0])
        assert len(dag.roots) == 2

    def test_dag_passthrough(self, simple):
        x, _ = simple
        dag = DAG((x * 2.0).node)
        assert as_dag(dag) is dag


class TestExecutionResult:
    def test_output_accessors(self, simple):
        x, inputs = simple
        result = FuseMEEngine(make_config()).execute(x * 2.0, inputs)
        assert result.output() is result.outputs[result.dag.roots[0]]
        assert result.comm_bytes == result.metrics.comm_bytes
        assert result.elapsed_seconds == result.metrics.elapsed_seconds

    def test_dag_defaults_from_fusion_plan(self, simple):
        x, inputs = simple
        result = FuseMEEngine(make_config()).execute(x * 2.0, inputs)
        assert result.dag is result.fusion_plan.dag

    def test_output_without_dag_raises_value_error(self):
        """A hand-built result with no DAG reports a usable error, not an
        assertion, when asked for positional outputs."""
        result = ExecutionResult(
            outputs={}, metrics=MetricsCollector(), fusion_plan=None
        )
        with pytest.raises(ValueError, match="no DAG"):
            result.output()


class TestSharedCluster:
    def test_explicit_cluster_accumulates(self, simple):
        """Passing one cluster across executions accumulates metrics —
        how iterative drivers (GNMF) could measure a whole job."""
        x, inputs = simple
        config = make_config()
        cluster = SimulatedCluster(config)
        engine = FuseMEEngine(config)
        engine.execute(x * 2.0, inputs, cluster=cluster)
        first = cluster.metrics.num_stages
        engine.execute(x * 2.0, inputs, cluster=cluster)
        assert cluster.metrics.num_stages == 2 * first

    def test_fresh_cluster_by_default(self, simple):
        x, inputs = simple
        engine = FuseMEEngine(make_config())
        a = engine.execute(x * 2.0, inputs)
        b = engine.execute(x * 2.0, inputs)
        assert a.metrics is not b.metrics

    def test_values_survive_shared_cluster(self, simple):
        x, inputs = simple
        config = make_config()
        cluster = SimulatedCluster(config)
        result = FuseMEEngine(config).execute(x * 3.0, inputs, cluster=cluster)
        np.testing.assert_allclose(
            result.output().to_numpy(), inputs["X"].to_numpy() * 3.0
        )

    def test_back_to_back_queries_report_independent_metrics(self, simple):
        """Two queries on one engine + cluster each see only their own
        modeled delta, matching what a fresh cluster would have reported."""
        x, inputs = simple
        config = make_config()
        reference_a = FuseMEEngine(config).execute(x * 2.0, inputs)
        reference_b = FuseMEEngine(config).execute(x + 1.0, inputs)

        cluster = SimulatedCluster(config)
        engine = FuseMEEngine(config)
        a = engine.execute(x * 2.0, inputs, cluster=cluster)
        b = engine.execute(x + 1.0, inputs, cluster=cluster)

        assert a.metrics.totals() == reference_a.metrics.totals()
        assert b.metrics.totals() == reference_b.metrics.totals()
        # and the cluster's own collector keeps the whole-job sum
        assert (
            cluster.metrics.num_stages
            == a.metrics.num_stages + b.metrics.num_stages
        )

    def test_reset_metrics_does_not_corrupt_prior_results(self, simple):
        x, inputs = simple
        config = make_config()
        cluster = SimulatedCluster(config)
        result = FuseMEEngine(config).execute(x * 2.0, inputs, cluster=cluster)
        totals = result.metrics.totals()
        cluster.reset_metrics()
        assert result.metrics.totals() == totals
        assert cluster.metrics.num_stages == 0

    def test_simulated_timeout_budget_is_per_query(self, simple):
        """The paper's T.O. applies to one query, not the cluster's whole
        accumulated life: three queries each well under the budget must all
        succeed on a shared cluster even though their summed modeled time
        exceeds it."""
        x, inputs = simple
        single = FuseMEEngine(make_config()).execute(x * 2.0, inputs)
        budget = single.elapsed_seconds * 1.5
        config = make_config(timeout_seconds=budget)
        cluster = SimulatedCluster(config)
        engine = FuseMEEngine(config)
        for _ in range(3):  # cumulative elapsed ends near 2x the budget
            engine.execute(x * 2.0, inputs, cluster=cluster)
        assert cluster.metrics.elapsed_seconds > budget


class TestRootResolution:
    def test_multi_root_dag_with_bare_input_root(self, simple):
        """A root that is a plain input resolves by name — even though the
        lifetime model releases intermediates, a bare-input root's binding
        survives to result collection."""
        x, inputs = simple
        result = FuseMEEngine(make_config()).execute([x, x * 2.0], inputs)
        np.testing.assert_array_equal(
            result.output(0).to_numpy(), inputs["X"].to_numpy()
        )
        np.testing.assert_allclose(
            result.output(1).to_numpy(), inputs["X"].to_numpy() * 2.0
        )

    def test_bare_input_root_across_all_engines(self, simple):
        from repro import (
            DistMELikeEngine,
            MatFastLikeEngine,
            SystemDSLikeEngine,
        )

        x, inputs = simple
        for engine_cls in (DistMELikeEngine, SystemDSLikeEngine, MatFastLikeEngine):
            result = engine_cls(make_config()).execute([x * 3.0, x], inputs)
            np.testing.assert_array_equal(
                result.output(1).to_numpy(), inputs["X"].to_numpy()
            )

    def test_output_index_out_of_range_message(self, simple):
        x, inputs = simple
        result = FuseMEEngine(make_config()).execute([x * 2.0, x + 1.0], inputs)
        with pytest.raises(IndexError, match="output index 2 out of range"):
            result.output(2)
        with pytest.raises(IndexError, match="2 root"):
            result.output(-3)
        # negative indices within range still work, like list indexing
        assert result.output(-1) is result.output(1)


class TestTraceIsolation:
    def test_result_trace_is_per_query_slice(self, simple):
        """On a shared scheduled-mode cluster, each result's trace contains
        only its own query's events and never aliases the live recorder."""
        x, inputs = simple
        config = make_config(time_model="scheduled")
        cluster = SimulatedCluster(config)
        engine = FuseMEEngine(config)
        a = engine.execute(x * 2.0, inputs, cluster=cluster)
        b = engine.execute(x + 1.0, inputs, cluster=cluster)
        assert a.trace is not cluster.trace
        assert b.trace is not cluster.trace
        assert len(a.trace) + len(b.trace) == len(cluster.trace)
        # a's slice was taken before b ran and is frozen: b's events are not in it
        a_names = {e.name for e in a.trace.events}
        b_names = {e.name for e in b.trace.events}
        assert not (a_names & b_names) or a.trace.events != b.trace.events
        assert len(a.trace) > 0 and len(b.trace) > 0
