"""Tests for the shared engine skeleton (repro.execution)."""

import numpy as np
import pytest

from repro import FuseMEEngine
from repro.cluster import SimulatedCluster
from repro.execution import as_dag
from repro.lang import DAG, matrix_input
from repro.matrix import rand_dense

from tests.conftest import make_config

BS = 25


@pytest.fixture
def simple():
    x = matrix_input("X", 100, 100, BS)
    inputs = {"X": rand_dense(100, 100, BS, seed=1)}
    return x, inputs


class TestAsDag:
    def test_expr(self, simple):
        x, _ = simple
        dag = as_dag(x * 2.0)
        assert len(dag.roots) == 1

    def test_expr_list(self, simple):
        x, _ = simple
        dag = as_dag([x * 2.0, x + 1.0])
        assert len(dag.roots) == 2

    def test_dag_passthrough(self, simple):
        x, _ = simple
        dag = DAG((x * 2.0).node)
        assert as_dag(dag) is dag


class TestExecutionResult:
    def test_output_accessors(self, simple):
        x, inputs = simple
        result = FuseMEEngine(make_config()).execute(x * 2.0, inputs)
        assert result.output() is result.outputs[result.dag.roots[0]]
        assert result.comm_bytes == result.metrics.comm_bytes
        assert result.elapsed_seconds == result.metrics.elapsed_seconds

    def test_dag_defaults_from_fusion_plan(self, simple):
        x, inputs = simple
        result = FuseMEEngine(make_config()).execute(x * 2.0, inputs)
        assert result.dag is result.fusion_plan.dag


class TestSharedCluster:
    def test_explicit_cluster_accumulates(self, simple):
        """Passing one cluster across executions accumulates metrics —
        how iterative drivers (GNMF) could measure a whole job."""
        x, inputs = simple
        config = make_config()
        cluster = SimulatedCluster(config)
        engine = FuseMEEngine(config)
        engine.execute(x * 2.0, inputs, cluster=cluster)
        first = cluster.metrics.num_stages
        engine.execute(x * 2.0, inputs, cluster=cluster)
        assert cluster.metrics.num_stages == 2 * first

    def test_fresh_cluster_by_default(self, simple):
        x, inputs = simple
        engine = FuseMEEngine(make_config())
        a = engine.execute(x * 2.0, inputs)
        b = engine.execute(x * 2.0, inputs)
        assert a.metrics is not b.metrics

    def test_values_survive_shared_cluster(self, simple):
        x, inputs = simple
        config = make_config()
        cluster = SimulatedCluster(config)
        result = FuseMEEngine(config).execute(x * 3.0, inputs, cluster=cluster)
        np.testing.assert_allclose(
            result.output().to_numpy(), inputs["X"].to_numpy() * 3.0
        )
