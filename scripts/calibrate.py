#!/usr/bin/env python
"""Calibrate the cost model against this machine and save the result.

Replays one or more iterative workloads (the GNMF update step, the ALS
weighted loss) through an engine running with ``calibration="active"``,
letting the :class:`repro.core.calibration.CalibrationStore` fit per-kernel
effective throughputs from the predicted-vs-measured gap.  The store is
then written as JSON — load it into a later session with
``CalibrationStore.load`` (and ``engine.calibration.merge``) to start
calibrated instead of cold.

Example::

    python scripts/calibrate.py --workload all --iterations 6 \
        --output calibration.json

Prints a per-iteration error trace (watch the mean abs relative seconds
error collapse after the first re-plan) and the fitted kernel table.
Exits non-zero when calibration failed to reduce the error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.config import ClusterConfig, EngineConfig  # noqa: E402
from repro.core import FuseMEEngine  # noqa: E402
from repro.core.calibration import CalibrationStore  # noqa: E402
from repro.matrix import rand_dense, rand_sparse  # noqa: E402
from repro.workloads.als import als_loss_query  # noqa: E402
from repro.workloads.gnmf import gnmf_updates  # noqa: E402

BLOCK_SIZE = 25


def build_config(args: argparse.Namespace) -> EngineConfig:
    cluster = ClusterConfig(
        num_nodes=args.nodes,
        tasks_per_node=args.tasks_per_node,
        task_memory_budget=8 * 1024 * 1024,
        input_split_bytes=36 * 1024,
    )
    return EngineConfig(
        cluster=cluster,
        block_size=BLOCK_SIZE,
        calibration="active",
        calibration_replan_threshold=args.replan_threshold,
    )


def gnmf_workload():
    users, items, factors = 400, 320, 40
    query = gnmf_updates(users, items, factors, density=0.05,
                         block_size=BLOCK_SIZE)
    inputs = {
        "X": rand_sparse(users, items, 0.05, BLOCK_SIZE, seed=7),
        "U": rand_dense(factors, items, BLOCK_SIZE, seed=8, low=0.1, high=1.0),
        "V": rand_dense(users, factors, BLOCK_SIZE, seed=9, low=0.1, high=1.0),
    }
    return [query.u_update, query.v_update], inputs


def als_workload():
    rows, cols, factors = 400, 320, 40
    query = als_loss_query(rows, cols, factors, density=0.05,
                           block_size=BLOCK_SIZE)
    inputs = {
        "X": rand_sparse(rows, cols, 0.05, BLOCK_SIZE, seed=7),
        "U": rand_dense(rows, factors, BLOCK_SIZE, seed=8, low=0.1, high=1.0),
        "V": rand_dense(factors, cols, BLOCK_SIZE, seed=9, low=0.1, high=1.0),
    }
    return query.expr, inputs


WORKLOADS = {"gnmf": gnmf_workload, "als": als_workload}


def replay(engine: FuseMEEngine, name: str, iterations: int):
    """Run one workload *iterations* times; returns (first, last) error."""
    query, inputs = WORKLOADS[name]()
    first = last = None
    for iteration in range(iterations):
        profile = engine.profile(query, inputs)
        error = profile.mean_abs_seconds_error
        if first is None:
            first = error
        last = error
        evicted = profile.counters.get("plan_cache_calibration_evictions", 0)
        print(
            f"  {name} iter {iteration}: measured "
            f"{profile.measured_seconds:.4f}s predicted "
            f"{profile.predicted_seconds:.4f}s  mean abs rel error "
            f"{error if error is not None else float('nan'):.4f}"
            + ("  [re-planned]" if evicted else "")
        )
    return first, last


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", choices=[*WORKLOADS, "all"],
                        default="all")
    parser.add_argument("--iterations", type=int, default=6,
                        help="replays per workload (default 6)")
    parser.add_argument("--output", default="calibration.json",
                        help="where to save the calibration store JSON")
    parser.add_argument("--input", default=None,
                        help="existing calibration JSON to warm-start from")
    parser.add_argument("--nodes", type=int, default=8)
    parser.add_argument("--tasks-per-node", type=int, default=12)
    parser.add_argument("--replan-threshold", type=float, default=0.5)
    args = parser.parse_args()

    engine = FuseMEEngine(build_config(args))
    if args.input:
        engine.calibration.merge(CalibrationStore.load(args.input))
        print(f"warm-started from {args.input}: {engine.calibration!r}")

    names = list(WORKLOADS) if args.workload == "all" else [args.workload]
    failures = []
    for name in names:
        print(f"calibrating on {name}:")
        first, last = replay(engine, name, args.iterations)
        if first is not None and last is not None:
            print(f"  {name}: error {first:.4f} -> {last:.4f}")
            if last > first:
                failures.append(
                    f"{name}: error grew ({first:.4f} -> {last:.4f})"
                )
        else:
            failures.append(f"{name}: no per-unit error measured")

    engine.calibration.save(args.output)
    stats = engine.calibration.stats()
    print(f"\nfitted kernels (generation {stats['generation']}, "
          f"{stats['observations']} observations):")
    for key, kernel in stats["kernels"].items():
        if "inv_net_rate" in kernel:
            print(f"  {key}: {kernel['samples']} samples, "
                  f"inv_net {kernel['inv_net_rate']:.3e} s/B, "
                  f"inv_com {kernel['inv_com_rate']:.3e} s/flop, "
                  f"overhead {kernel['overhead_seconds']:.4f}s "
                  f"(residual {kernel['residual_error']:.3f})")
        else:
            print(f"  {key}: {kernel['samples']} samples (below min_samples, "
                  f"pooled fit applies)")
    print(f"saved calibration to {args.output}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
