#!/usr/bin/env python
"""Import-layering lint for the repro package.

The codebase is layered bottom-up::

    utils, errors, config
      -> blocks          (single-block kernels; no distribution)
      -> matrix          (blocked matrices; no cluster knowledge)
      -> lang            (expression DAG; purely logical)
      -> cluster         (simulated cluster substrate)
      -> core / operators / execution   (planning, lowering, physical ops)
      -> baselines
      -> serving
      -> workloads

Each layer may import itself and anything *below* it — never above.  Two
rules the paper's architecture depends on get called out explicitly:

* ``blocks`` and ``matrix`` never import ``cluster`` (the data plane stays
  runtime-free), and nothing below ``serving`` imports ``serving``;
* only the physical layer (``core/cfo.py``, ``core/physical.py``) and
  ``operators/`` may open cluster stages (``.stage(...)``) — engines and
  everything above talk to the cluster through the physical plan;
* ``cluster/procpool`` is a pure substrate: it may never import the
  planning (``core``), serving, or telemetry (``obs``) layers, even if the
  ``cluster`` layer as a whole is someday granted those imports.  The
  driver-side bridge lives in ``core/procexec.py``, above the substrate;
* ``core/calibration.py`` consumes plain floats only: it may import nothing
  above the config layer (in particular never ``serving``), even though the
  ``core`` layer as a whole is allowed more;
* the observability plane (``obs/accounting.py``, ``obs/slo.py``) consumes
  plain data only: beyond the ``obs`` package itself it may import nothing
  but ``errors``, so ledgers and SLO math stay engine-free leaf modules;
* the replica pool and async front end (``serving/pool.py``,
  ``serving/routing.py``, ``serving/ticket.py``,
  ``serving/async_service.py``) are front-end plumbing: engines reach them
  as constructed objects, so they never import the planning/execution
  stacks, even though the ``serving`` layer as a whole may.

Imports inside ``if TYPE_CHECKING:`` blocks are ignored (annotations only).
Exit status 0 when clean, 1 with one line per violation otherwise.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"

#: layer name -> repro sub-packages/modules it may import (besides itself).
ALLOWED = {
    "utils": {"errors"},
    "errors": set(),
    "config": {"errors"},
    # obs sits at the bottom next to config: upper layers hand it plain
    # data, and it may never import core/cluster/serving (no cycles, and
    # telemetry can never reach back into the engine).
    "obs": {"utils", "errors", "config"},
    "blocks": {"utils", "errors", "config"},
    "matrix": {"blocks", "utils", "errors", "config"},
    "lang": {"matrix", "blocks", "utils", "errors", "config"},
    "cluster": {"matrix", "blocks", "utils", "errors", "config"},
    "core": {"operators", "execution", "cluster", "lang", "matrix", "blocks",
             "obs", "utils", "errors", "config"},
    "operators": {"core", "cluster", "lang", "matrix", "blocks", "obs",
                  "utils", "errors", "config"},
    "execution": {"core", "cluster", "lang", "matrix", "blocks", "obs",
                  "utils", "errors", "config"},
    "baselines": {"core", "operators", "execution", "cluster", "lang",
                  "matrix", "blocks", "obs", "utils", "errors", "config"},
    "serving": {"baselines", "core", "operators", "execution", "cluster",
                "lang", "matrix", "blocks", "obs", "utils", "errors",
                "config"},
    "datasets": {"matrix", "blocks", "utils", "errors", "config"},
    "workloads": {"serving", "baselines", "core", "operators", "execution",
                  "cluster", "lang", "matrix", "blocks", "obs", "utils",
                  "errors", "config"},
}

#: Files allowed to call ``<something>.stage(...)``: the cluster package
#: (which defines it) plus the physical operators that execute units.
STAGE_ALLOWED_DIRS = ("cluster", "operators")
STAGE_ALLOWED_FILES = ("core/cfo.py", "core/physical.py", "core/procexec.py")

#: ``cluster/procpool`` ships pickled tasks into spawned worker processes;
#: anything it imports gets re-imported in every child.  It must stay a pure
#: substrate — never the planning, serving, or telemetry layers — regardless
#: of what the wider ``cluster`` layer is allowed.
PROCPOOL_FORBIDDEN = {"core", "serving", "obs"}

#: ``core/calibration.py`` is the shared store the serving layer publishes
#: and ``scripts/calibrate.py`` round-trips to disk.  It consumes plain
#: floats only, so it stays at the very bottom: never the cluster,
#: execution, or serving stacks — regardless of what the wider ``core``
#: layer is allowed.
CALIBRATION_ALLOWED = {"utils", "errors", "config"}

#: The replica pool and async front end are pure front-end plumbing: they
#: route, queue, and bridge — engines reach them as already-constructed
#: objects (``engine.clone()``), never as imports.  Regardless of what the
#: wider ``serving`` layer is allowed, these files must not import the
#: planning/execution stacks (``core``, ``operators``, ``execution``,
#: ``baselines``) or anything above serving.
SERVING_POOL_FILES = (
    "serving/pool.py",
    "serving/routing.py",
    "serving/ticket.py",
    "serving/async_service.py",
)
SERVING_POOL_ALLOWED = {"serving", "cluster", "obs", "utils", "errors",
                        "config"}

#: The accounting ledger and SLO tracker are the service observability
#: plane: the serving layer pushes plain dicts and floats *into* them and
#: reads snapshots back out.  They must stay leaf modules — never importing
#: the engine stacks (``core``, ``cluster``, ``serving``) nor even the
#: lower utility layers — so a ledger can be unit-tested, reused, or
#: replaced without dragging any engine machinery along.  (The layer-wide
#: ``obs`` rule already forbids the engine stacks; this pins the plane's
#: files to an explicit, tighter allowlist.)
OBS_PLANE_FILES = ("obs/accounting.py", "obs/slo.py")
OBS_PLANE_ALLOWED = {"obs", "errors"}

#: ``core/passes`` is the graph-level rewrite pipeline over the physical
#: IR: it sits strictly between lowering (``core/physical.py``) and engine
#: annotation.  It prices rewrites through the cost model only — never by
#: touching the runtime — so regardless of what the wider ``core`` layer
#: is allowed, it must not import the cluster substrate, the execution
#: layer, the physical operators, baselines, or serving.
PASSES_FORBIDDEN = {"cluster", "execution", "operators", "baselines",
                    "serving"}


def layer_of(path: Path) -> str | None:
    """The layer a source file belongs to (None for the repro facade)."""
    rel = path.relative_to(SRC)
    top = rel.parts[0]
    if top == "__init__.py":
        return None  # the public facade re-exports every layer
    if top.endswith(".py"):
        top = top[:-3]
    return top


def _is_type_checking(test: ast.expr) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def repro_imports(tree: ast.AST) -> list[tuple[int, str]]:
    """(lineno, repro-sub-layer) for every runtime import of repro.*"""
    found: list[tuple[int, str]] = []

    def visit(node: ast.AST) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.If) and _is_type_checking(child.test):
                for orelse in child.orelse:
                    visit(orelse)
                continue
            if isinstance(child, ast.Import):
                for alias in child.names:
                    if alias.name == "repro" or alias.name.startswith("repro."):
                        parts = alias.name.split(".")
                        found.append((child.lineno, parts[1] if len(parts) > 1 else ""))
            elif isinstance(child, ast.ImportFrom):
                module = child.module or ""
                if child.level == 0 and (module == "repro" or module.startswith("repro.")):
                    parts = module.split(".")
                    found.append((child.lineno, parts[1] if len(parts) > 1 else ""))
            visit(child)

    visit(tree)
    return found


def stage_calls(tree: ast.AST) -> list[int]:
    """Line numbers of ``<expr>.stage(...)`` calls."""
    return [
        node.lineno
        for node in ast.walk(tree)
        if isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "stage"
    ]


def stage_allowed(rel: str) -> bool:
    if rel in STAGE_ALLOWED_FILES:
        return True
    return rel.split("/", 1)[0] in STAGE_ALLOWED_DIRS


def main() -> int:
    violations: list[str] = []
    for path in sorted(SRC.rglob("*.py")):
        rel = path.relative_to(SRC).as_posix()
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        layer = layer_of(path)
        if layer is not None:
            if layer not in ALLOWED:
                violations.append(f"{rel}: unknown layer {layer!r} (add it to ALLOWED)")
                continue
            permitted = ALLOWED[layer] | {layer}
            for lineno, target in repro_imports(tree):
                if target and target not in permitted:
                    violations.append(
                        f"{rel}:{lineno}: layer {layer!r} must not import "
                        f"repro.{target}"
                    )
        if rel == "core/calibration.py":
            for lineno, target in repro_imports(tree):
                if target and target not in CALIBRATION_ALLOWED:
                    violations.append(
                        f"{rel}:{lineno}: core/calibration consumes plain "
                        f"floats and must not import repro.{target}"
                    )
        if rel in SERVING_POOL_FILES:
            for lineno, target in repro_imports(tree):
                if target and target not in SERVING_POOL_ALLOWED:
                    violations.append(
                        f"{rel}:{lineno}: the replica pool / async front end "
                        f"is front-end plumbing and must not import "
                        f"repro.{target}"
                    )
        if rel in OBS_PLANE_FILES:
            for lineno, target in repro_imports(tree):
                if target and target not in OBS_PLANE_ALLOWED:
                    violations.append(
                        f"{rel}:{lineno}: the observability plane consumes "
                        f"plain data and must not import repro.{target}"
                    )
        if rel.startswith("core/passes/"):
            for lineno, target in repro_imports(tree):
                if target in PASSES_FORBIDDEN:
                    violations.append(
                        f"{rel}:{lineno}: core/passes sits between the "
                        f"physical IR and engine annotation and must not "
                        f"import repro.{target}"
                    )
        if rel.startswith("cluster/procpool/"):
            for lineno, target in repro_imports(tree):
                if target in PROCPOOL_FORBIDDEN:
                    violations.append(
                        f"{rel}:{lineno}: cluster/procpool is a pure "
                        f"substrate and must not import repro.{target}"
                    )
        if not stage_allowed(rel):
            for lineno in stage_calls(tree):
                violations.append(
                    f"{rel}:{lineno}: only operators and the physical layer "
                    f"may open cluster stages (.stage(...))"
                )
    if violations:
        print(f"check_layers: {len(violations)} violation(s)")
        for line in violations:
            print("  " + line)
        return 1
    print("check_layers: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
