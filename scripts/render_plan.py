#!/usr/bin/env python
"""Render a workload's physical plan as a Mermaid or Graphviz diagram.

Plans the chosen workload on an engine (no execution), runs the graph-pass
pipeline per ``--passes``, and prints ``PhysicalPlan.visualize()``: units
as subgraphs, consolidation edges labeled with their modeled traffic,
shared (deduplicated) consolidations dashed, and merged units highlighted.

Examples::

    python scripts/render_plan.py --workload gnmf
    python scripts/render_plan.py --workload als --format dot --passes off
    python scripts/render_plan.py --workload autoencoder -o plan.mmd

Paste Mermaid output into any Markdown viewer that renders ``mermaid``
fences (or https://mermaid.live); pipe DOT output through ``dot -Tsvg``.
With ``--explain`` the textual plan (including the pass report lines) is
printed to stderr alongside the diagram.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro import (  # noqa: E402
    DistMELikeEngine,
    FuseMEEngine,
    LocalXLAEngine,
    MatFastLikeEngine,
    SystemDSLikeEngine,
)
from repro.config import ClusterConfig, EngineConfig  # noqa: E402
from repro.workloads.als import als_loss_query  # noqa: E402
from repro.workloads.autoencoder import AutoEncoder, AutoEncoderShapes  # noqa: E402
from repro.workloads.gnmf import gnmf_updates  # noqa: E402

ENGINES = {
    "fuseme": FuseMEEngine,
    "distme": DistMELikeEngine,
    "systemds": SystemDSLikeEngine,
    "matfast": MatFastLikeEngine,
    "localxla": LocalXLAEngine,
}

BLOCK_SIZE = 20


def build_query(name: str):
    if name == "gnmf":
        q = gnmf_updates(100, 80, 20, density=0.1, block_size=BLOCK_SIZE)
        return [q.u_update, q.v_update]
    if name == "als":
        return als_loss_query(
            100, 80, 20, density=0.1, block_size=BLOCK_SIZE
        ).expr
    if name == "autoencoder":
        shapes = AutoEncoderShapes(features=100, hidden1=40, hidden2=20)
        return AutoEncoder(
            shapes, batch_size=60, block_size=BLOCK_SIZE
        ).step_exprs
    raise SystemExit(f"unknown workload {name!r}")


def build_config(passes: str) -> EngineConfig:
    cluster = ClusterConfig(
        num_nodes=2,
        tasks_per_node=4,
        task_memory_budget=64 * 1024 * 1024,
        input_split_bytes=64 * 1024,
    )
    return EngineConfig(
        cluster=cluster, block_size=BLOCK_SIZE, graph_passes=passes
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workload", choices=("gnmf", "als", "autoencoder"), default="gnmf"
    )
    parser.add_argument(
        "--engine", choices=sorted(ENGINES), default="fuseme"
    )
    parser.add_argument(
        "--format", choices=("mermaid", "dot"), default="mermaid",
        help="diagram dialect (default: mermaid)",
    )
    parser.add_argument(
        "--passes", default="all",
        help='graph-pass spec: "all", "off", or a comma list '
             '(default: all)',
    )
    parser.add_argument(
        "-o", "--output", default=None,
        help="write the diagram here instead of stdout",
    )
    parser.add_argument(
        "--explain", action="store_true",
        help="also print the textual plan (with pass reports) to stderr",
    )
    args = parser.parse_args()

    engine = ENGINES[args.engine](build_config(args.passes))
    physical = engine.lower_query(build_query(args.workload))
    diagram = physical.visualize(fmt=args.format)

    if args.explain:
        print(physical.render(), file=sys.stderr)
    if args.output:
        Path(args.output).write_text(diagram + "\n", encoding="utf-8")
        print(f"wrote {args.output}", file=sys.stderr)
    else:
        print(diagram)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
