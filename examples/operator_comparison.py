"""Inside the fused operators: BFO vs RFO vs CFO on one query.

Executes the paper's running example with all three distributed fused
operators on identical inputs and prints the trade-off Table 1 formalizes:
BFO broadcasts (low traffic while sides are small, but per-task memory fixed
at the full side matrices), RFO replicates (tiny tasks, heavy traffic), and
the CFO picks an elastic middle point (P*, Q*, R*) from the cost model.

It then shrinks the per-task memory budget until BFO dies with O.O.M. and
shows the CFO adapting its partitioning instead — the paper's core claim.

Run:  python examples/operator_comparison.py
"""

from repro import EngineConfig
from repro.cluster import SimulatedCluster
from repro.core.cfo import CuboidFusedOperator
from repro.core.plan import PartialFusionPlan
from repro.errors import TaskOutOfMemoryError
from repro.lang import DAG, log, matrix_input
from repro.matrix import rand_dense, rand_sparse
from repro.operators import BroadcastFusedOperator, ReplicationFusedOperator
from repro.utils.formatting import format_bytes, format_seconds, render_table

BLOCK = 25
ROWS, COLS, COMMON = 1000, 750, 150
DENSITY = 0.05


def build():
    x = matrix_input("X", ROWS, COLS, BLOCK, density=DENSITY)
    u = matrix_input("U", ROWS, COMMON, BLOCK)
    v = matrix_input("V", COLS, COMMON, BLOCK)
    dag = DAG((x * log(u @ v.T + 1e-8)).node)
    plan = PartialFusionPlan(set(dag.operators()), dag)
    inputs = {
        "X": rand_sparse(ROWS, COLS, DENSITY, BLOCK, seed=1),
        "U": rand_dense(ROWS, COMMON, BLOCK, seed=2),
        "V": rand_dense(COLS, COMMON, BLOCK, seed=3),
    }
    return plan, inputs


def run(op_cls, plan, inputs, config, **kwargs):
    cluster = SimulatedCluster(config)
    operator = op_cls(plan, config, **kwargs)
    try:
        operator.execute(cluster, inputs)
    except TaskOutOfMemoryError as exc:
        return operator, None, exc
    return operator, cluster.metrics, None


def main() -> None:
    plan, inputs = build()
    config = EngineConfig(block_size=BLOCK).with_cluster(
        num_nodes=4, tasks_per_node=6,
        task_memory_budget=16 * 1024 * 1024,
        input_split_bytes=64 * 1024,
    )

    rows = []
    for name, op_cls in (
        ("BFO (broadcast)", BroadcastFusedOperator),
        ("RFO (replicate)", ReplicationFusedOperator),
        ("CFO (cuboid)", CuboidFusedOperator),
    ):
        operator, metrics, failure = run(op_cls, plan, inputs, config)
        detail = ""
        if isinstance(operator, CuboidFusedOperator):
            detail = f"(P,Q,R)={operator.pqr}"
        rows.append([
            name,
            "O.O.M." if failure else format_seconds(metrics.elapsed_seconds),
            "-" if failure else format_bytes(metrics.comm_bytes),
            "-" if failure else format_bytes(metrics.peak_task_memory),
            detail,
        ])
    print("query: X * log(U x V^T + eps), "
          f"X {ROWS}x{COLS} d={DENSITY}, factors {COMMON}\n")
    print(render_table(
        ["operator", "elapsed", "communication", "peak task memory", ""],
        rows,
    ))

    # now starve the tasks: BFO cannot adapt, the CFO repartitions
    print("\nshrinking the per-task budget to 1 MB ...")
    tight = config.with_cluster(task_memory_budget=1024 * 1024)
    for name, op_cls in (
        ("BFO", BroadcastFusedOperator),
        ("CFO", CuboidFusedOperator),
    ):
        operator, metrics, failure = run(op_cls, plan, inputs, tight)
        if failure:
            print(f"  {name}: O.O.M. ({format_bytes(failure.used_bytes)} "
                  f"needed by one task)")
        else:
            pqr = getattr(operator, "pqr", None)
            print(f"  {name}: survived with (P,Q,R)={pqr}, "
                  f"peak task memory "
                  f"{format_bytes(metrics.peak_task_memory)}")


if __name__ == "__main__":
    main()
