"""AutoEncoder training on three engines (the Section 6.5 comparison).

Trains the two-hidden-layer AutoEncoder for one epoch on FuseME, the
SystemDS-like baseline and the single-node TensorFlow-XLA-like baseline,
verifying that all three produce bit-identical weights while their cost
profiles differ, and that training actually reduces reconstruction error.

Run:  python examples/autoencoder_training.py
"""

from repro import EngineConfig, FuseMEEngine, LocalXLAEngine, SystemDSLikeEngine
from repro.matrix import rand_dense
from repro.utils.formatting import format_bytes, format_seconds
from repro.workloads import AutoEncoder, AutoEncoderShapes

BLOCK = 25


def main() -> None:
    shapes = AutoEncoderShapes(features=200, hidden1=100, hidden2=25)
    autoencoder = AutoEncoder(shapes, batch_size=100, block_size=BLOCK)
    data = rand_dense(400, shapes.features, BLOCK, seed=3)
    weights = autoencoder.initial_weights(seed=5)

    before = autoencoder.reconstruction_error(data, weights)
    print(f"architecture: {shapes}")
    print(f"reconstruction error before training: {before:.6f}\n")

    config = EngineConfig(block_size=BLOCK).with_cluster(
        num_nodes=2, tasks_per_node=4
    )
    engines = [
        FuseMEEngine(config),
        SystemDSLikeEngine(config),
        LocalXLAEngine(config),
    ]

    trained = {}
    for engine in engines:
        run = autoencoder.run_epoch(engine, data, weights=weights)
        after = autoencoder.reconstruction_error(data, run.weights)
        trained[engine.name] = run
        print(
            f"{engine.name:11s} epoch: steps={len(run.steps)} "
            f"modeled time={format_seconds(run.elapsed_seconds)} "
            f"comm={format_bytes(run.comm_bytes)} "
            f"error after={after:.6f}"
        )

    # every engine computes the same gradients: weights agree exactly
    reference = trained["FuseME"].weights
    for name, run in trained.items():
        for weight_name in reference:
            assert reference[weight_name].allclose(
                run.weights[weight_name], atol=1e-7
            ), (name, weight_name)
    print("\nall engines produced identical weights: OK")

    final = autoencoder.reconstruction_error(data, reference)
    assert final < before
    print(f"training reduced reconstruction error {before:.6f} -> {final:.6f}")


if __name__ == "__main__":
    main()
