"""Writing queries in DML syntax (the paper's Section 5 interface).

FuseME's users describe queries in SystemML's Declarative Machine Learning
language; this example parses DML-style strings — including the full GNMF
update from Eq. 6 — executes them on the engine, and shows they plan and
compute exactly like the Python expression API.

Run:  python examples/dml_queries.py
"""

import numpy as np

from repro import (
    EngineConfig,
    FuseMEEngine,
    matrix_input,
    parse_expression,
    rand_dense,
    rand_sparse,
)

BLOCK = 25


def main() -> None:
    users, items, k = 500, 375, 50
    inputs = {
        "X": rand_sparse(users, items, 0.05, BLOCK, seed=1),
        "U": rand_dense(k, items, BLOCK, seed=2, low=0.1, high=1.0),
        "V": rand_dense(users, k, BLOCK, seed=3, low=0.1, high=1.0),
    }
    bindings = {
        "X": matrix_input("X", users, items, BLOCK, density=0.05),
        "U": matrix_input("U", k, items, BLOCK),
        "V": matrix_input("V", users, k, BLOCK),
    }

    queries = {
        "GNMF U-update (Eq. 6)":
            "U * (t(V) %*% X) / (t(V) %*% V %*% U + 1e-9)",
        "NMF log-likelihood core":
            "X * log(V %*% U + 1e-8)",
        "weighted squared loss (Fig. 1a)":
            "sum(X * (X - V %*% U) ^ 2)",
        "per-item rating mass":
            "colSums(X)",
    }

    engine = FuseMEEngine(EngineConfig(block_size=BLOCK).with_cluster(
        num_nodes=4, tasks_per_node=6
    ))
    dense = {name: m.to_numpy() for name, m in inputs.items()}

    for title, text in queries.items():
        expr = parse_expression(text, bindings)
        result = engine.execute(expr, inputs)
        out = result.output()
        print(f"{title}\n    {text}")
        print(f"    plan: {' | '.join(u.label() for u in result.fusion_plan.units)}")
        print(f"    output {out.shape[0]}x{out.shape[1]}, "
              f"{result.metrics.summary()}\n")

    # the parsed loss equals the hand-built numpy value
    loss = parse_expression(queries["weighted squared loss (Fig. 1a)"], bindings)
    got = engine.execute(loss, inputs).output().to_numpy()[0, 0]
    expected = np.sum(dense["X"] * (dense["X"] - dense["V"] @ dense["U"]) ** 2)
    assert np.isclose(got, expected), (got, expected)
    print(f"parsed loss verified against numpy: {got:.4f}")


if __name__ == "__main__":
    main()
