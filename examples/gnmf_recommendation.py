"""GNMF-based recommendation: the application Section 6.4 motivates.

Factorizes a (synthetic, MovieLens-shaped) rating matrix with Gaussian NMF —
the paper's macro-benchmark query, Eq. 6 — on the FuseME engine, then
recommends unseen items for a user from the predicted rating matrix ``V x U``.

Along the way it prints the per-iteration cost profile and compares the
fusion plans FuseME and a SystemDS-like engine generate for the same update
(the Figure 10 contrast: CFG fuses the multiplications, GEN fuses only the
two element-wise operators).

Run:  python examples/gnmf_recommendation.py
"""

from repro import EngineConfig, FuseMEEngine, SystemDSLikeEngine
from repro.datasets import load_real_dataset
from repro.utils.formatting import format_bytes, format_seconds
from repro.workloads import GNMF, top_k_items

BLOCK = 25
FACTORS = 50
ITERATIONS = 5


def main() -> None:
    # a rating matrix with MovieLens' shape and density (Table 2), scaled
    x = load_real_dataset("MovieLens", scale=250, block_size=BLOCK, seed=0)
    users, items = x.shape
    print(f"rating matrix: {users} users x {items} items, "
          f"density {x.density:.4f} ({x.nnz} ratings)")

    config = EngineConfig(block_size=BLOCK).with_cluster(
        num_nodes=4, tasks_per_node=6
    )
    gnmf = GNMF(users, items, FACTORS, x.density, BLOCK)

    # show the planning difference first (Figure 10)
    engine = FuseMEEngine(config)
    probe = engine.execute(
        [gnmf.query.u_update, gnmf.query.v_update],
        {"X": x, **dict(zip(("U", "V"), gnmf.initial_factors()))},
    )
    print("\nFuseME fusion plan for one GNMF iteration:")
    print(probe.fusion_plan.dump())
    sysds = SystemDSLikeEngine(config)
    probe2 = sysds.execute(
        [gnmf.query.u_update, gnmf.query.v_update],
        {"X": x, **dict(zip(("U", "V"), gnmf.initial_factors()))},
    )
    print("\nSystemDS(GEN) fusion plan for the same iteration "
          "(multiplications stay unfused):")
    print(probe2.fusion_plan.dump())

    # factorize
    print(f"\nrunning {ITERATIONS} GNMF iterations on FuseME...")
    run = gnmf.run(engine, x, iterations=ITERATIONS, track_loss=True)
    for it in run.iterations:
        print(
            f"  iter {it.iteration}: "
            f"time={format_seconds(it.elapsed_seconds)} "
            f"comm={format_bytes(it.comm_bytes)} "
            f"loss={it.loss:.1f}"
        )

    # recommend
    user = 3
    recs = top_k_items(engine, x, run.u, run.v, user=user, k=5)
    print(f"\ntop-5 recommendations for user {user}:")
    for rank, (item, score) in enumerate(recs, start=1):
        print(f"  {rank}. item {item} (predicted rating {score:.4g})")


if __name__ == "__main__":
    main()
