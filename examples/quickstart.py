"""Quickstart: run a fused matrix query on the FuseME engine.

Builds the paper's running example ``O = X * log(U x V^T + eps)`` (Section
2.2) over a sparse rating matrix, executes it with FuseME, and shows what the
engine did: the fusion plan (one CFO covering the whole query), the chosen
cuboid partitioning, and the communication/compute/memory accounting.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    EngineConfig,
    FuseMEEngine,
    log,
    matrix_input,
    rand_dense,
    rand_sparse,
)

BLOCK = 100  # tile side; the paper uses 1000x1000 tiles


def main() -> None:
    rows, cols, factors = 4000, 3000, 200
    density = 0.01

    # 1. materialize the inputs (a sparse rating matrix, two dense factors)
    x = rand_sparse(rows, cols, density, block_size=BLOCK, seed=7)
    u = rand_dense(rows, factors, block_size=BLOCK, seed=8)
    v = rand_dense(cols, factors, block_size=BLOCK, seed=9)
    print(f"X: {x!r}")

    # 2. declare the query lazily: nothing computes here
    xe = matrix_input("X", rows, cols, BLOCK, density=density)
    ue = matrix_input("U", rows, factors, BLOCK)
    ve = matrix_input("V", cols, factors, BLOCK)
    query = xe * log(ue @ ve.T + 1e-8)

    # 3. execute on the (simulated) cluster
    engine = FuseMEEngine(EngineConfig(block_size=BLOCK))
    result = engine.execute(query, {"X": x, "U": u, "V": v})

    # 4. inspect what happened
    print("\nfusion plan (the whole query became one fused operator):")
    print(result.fusion_plan.dump())
    print("\nexecution metrics:")
    print(" ", result.metrics.summary())

    output = result.output()
    print(f"\noutput: {output!r}")

    # 5. the result is exactly what numpy computes, fused or not
    expected = x.to_numpy() * np.log(u.to_numpy() @ v.to_numpy().T + 1e-8)
    assert np.allclose(output.to_numpy(), expected, atol=1e-8)
    print("verified against the dense numpy reference: OK")


if __name__ == "__main__":
    main()
